package server

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"oodb/internal/model"
	"oodb/internal/server/client"
)

// TestClassesVerb pins the schema-discovery verb: sorted class names over
// the wire.
func TestClassesVerb(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.DefineClass("Assembly", nil); err != nil {
		t.Fatal(err)
	}
	s := startServer(t, db, Options{})
	c := dial(t, s, client.Options{Role: "app"})
	names, err := c.Classes()
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for i, n := range names {
		found[n] = true
		if i > 0 && names[i-1] > n {
			t.Fatalf("class list not sorted: %v", names)
		}
	}
	if !found["Part"] || !found["Assembly"] {
		t.Fatalf("classes = %v", names)
	}
}

// TestRedialerHealsLatchedClient is the PR 9 limitation fixed: a client
// latches closed when its server goes away, and a bare *Client stays dead
// forever. The Redialer transparently re-establishes across a server
// restart on the same address.
func TestRedialerHealsLatchedClient(t *testing.T) {
	db := newTestDB(t)
	s := New(db, Options{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	addr := s.Addr().String()

	rd := client.NewRedialer(addr, client.Options{Role: "app", RequestTimeout: 2 * time.Second},
		client.RedialOptions{Backoff: 10 * time.Millisecond, BackoffCap: 100 * time.Millisecond})
	defer rd.Close()

	var oid model.OID
	err := rd.Do(func(c *client.Client) error {
		var err error
		oid, err = c.Insert("Part", map[string]model.Value{"name": model.String("cam")})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	// Kill the server. The cached client's next call fails with ErrClosed
	// and latches; Do must discard it, redial, and succeed once a server
	// is back on the same address.
	if err := s.Drain(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := rd.Do(func(c *client.Client) error { return c.Ping() }); err == nil {
		t.Fatal("ping succeeded with server down")
	}

	s2 := New(db, Options{Addr: addr})
	// The dead listener's port may take a moment to rebind under load.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := s2.Start(); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Cleanup(func() { _ = s2.Drain(2 * time.Second) })

	// The failed dial above armed a short backoff window; poll past it.
	deadline = time.Now().Add(5 * time.Second)
	for {
		err := rd.Do(func(c *client.Client) error {
			_, err := c.Fetch(oid)
			return err
		})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("redialer never recovered: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRedialerDoAtMostOnce pins the heal/at-most-once split: Do retries
// only failures that provably preceded the send (a latched-closed
// client, client.NotSent), and returns mid-round-trip connection errors
// without re-sending — a non-idempotent request the server may already
// have executed is never blindly sent twice. DoIdempotent opts into the
// broader heal.
func TestRedialerDoAtMostOnce(t *testing.T) {
	db := newTestDB(t)
	s := startServer(t, db, Options{})
	rd := client.NewRedialer(s.Addr().String(), client.Options{Role: "app"}, client.RedialOptions{})
	defer rd.Close()

	// Latch the cached connection closed behind the redialer's back: the
	// next request fails before anything reaches the wire, so Do must
	// transparently redial and run it on the fresh connection.
	c, err := rd.Client()
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	calls := 0
	err = rd.Do(func(c *client.Client) error {
		calls++
		return c.Ping()
	})
	if err != nil {
		t.Fatalf("Do over a latched client: %v", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (latched attempt + healed retry)", calls)
	}

	// A connection error surfaced mid-round-trip (after the send) is NOT
	// retried: the server may have executed the request already.
	calls = 0
	err = rd.Do(func(c *client.Client) error {
		calls++
		return fmt.Errorf("%w: response lost mid-flight", client.ErrClosed)
	})
	if !errors.Is(err, client.ErrClosed) {
		t.Fatalf("mid-flight error = %v", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no blind re-send)", calls)
	}

	// DoIdempotent accepts the double-execution risk: the same mid-flight
	// error is retried once on a fresh connection.
	calls = 0
	err = rd.DoIdempotent(func(c *client.Client) error {
		calls++
		if calls == 1 {
			return fmt.Errorf("%w: response lost mid-flight", client.ErrClosed)
		}
		return c.Ping()
	})
	if err != nil {
		t.Fatalf("DoIdempotent: %v", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (mid-flight attempt + retry)", calls)
	}
}

// TestRedialerBackoffFailsFast pins the rate limit: with the server down,
// the first Client() call pays a real dial attempt, and a call inside the
// backoff window fails immediately without dialing.
func TestRedialerBackoffFailsFast(t *testing.T) {
	// An address nothing listens on: a bound-then-closed ephemeral port.
	db := newTestDB(t)
	s := New(db, Options{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	addr := s.Addr().String()
	if err := s.Drain(time.Second); err != nil {
		t.Fatal(err)
	}

	rd := client.NewRedialer(addr, client.Options{DialTimeout: 500 * time.Millisecond},
		client.RedialOptions{Backoff: time.Minute, BackoffCap: time.Minute})
	defer rd.Close()

	if _, err := rd.Client(); err == nil {
		t.Fatal("dial to dead server succeeded")
	}
	start := time.Now()
	if _, err := rd.Client(); err == nil {
		t.Fatal("second dial succeeded")
	} else if time.Since(start) > 100*time.Millisecond {
		t.Fatalf("backoff window dialed instead of failing fast (%v)", time.Since(start))
	}

	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Client(); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("after Close: %v", err)
	}
}
