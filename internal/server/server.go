// Package server implements kimsrv: a concurrent session server that
// multiplexes many network clients onto one embedded kimdb engine.
//
// The paper's architecture assumes an engine that serves applications —
// shared access, sessions, authorization as database facilities (§5) —
// and this package is that front end. Each accepted connection becomes a
// session: a protocol handshake maps the client to a role (token
// authentication, authorization through the internal/authz lattice), the
// session gets its own memory-resident workspace (internal/workspace) for
// cached object fetches, and an optional explicit transaction carries the
// engine's full Session surface over the wire protocol defined in
// internal/server/proto.
//
// Operational spine:
//
//   - Admission control: a session cap at handshake (typed ServerFull
//     rejection), a per-session pipelined-request queue whose overflow is
//     shed with a typed retryable error before any work is done, and a
//     global in-flight execution cap with a bounded queue wait. The
//     controller reads the same counters it publishes as server_* gauges.
//   - Idle-session eviction: a janitor closes sessions idle past the
//     limit; the session teardown aborts its open transaction, releasing
//     its locks, so an abandoned client cannot wedge writers.
//   - Fail isolation: a panic while executing one request is confined to
//     its session (logged, counted, transaction aborted, connection
//     closed); the server keeps serving.
//   - Graceful drain: Drain refuses new sessions, lets queued and
//     in-flight requests (commits included) finish, aborts stragglers
//     after a deadline, checkpoints the engine and returns. Acknowledged
//     commits are durable across drain + restart by the WAL's contract.
package server

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"oodb"
	"oodb/internal/authz"
	"oodb/internal/obs"
	"oodb/internal/server/proto"
)

// Options configures a Server. The zero value serves on an ephemeral port
// in open mode (any role, no token, no authorization filtering).
type Options struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string

	// Authorizer, when non-nil, turns on authorization enforcement: every
	// operation is checked against the lattice under the session's role,
	// and query results are filtered to readable instances (the engine's
	// Session semantics). Nil means open mode — every operation allowed.
	Authorizer *authz.Authorizer

	// Tokens, when non-nil, restricts handshakes to the listed roles and
	// requires each to present its token (empty string = no token needed).
	// Nil accepts any role name.
	Tokens map[string]string

	// MaxSessions caps concurrently connected sessions (default 1024).
	// Excess handshakes are refused with a typed ServerFull error.
	MaxSessions int

	// SessionQueue caps pipelined requests buffered per session (default
	// 8). Overflow is shed with a typed retryable error.
	SessionQueue int

	// MaxInFlight caps requests executing concurrently across all
	// sessions (default 4×GOMAXPROCS). A request that cannot get a slot
	// within QueueWait is shed with a typed retryable error.
	MaxInFlight int

	// QueueWait bounds how long a request waits for a global execution
	// slot before being shed (default 25ms).
	QueueWait time.Duration

	// IdleTimeout evicts sessions with no request activity for this long
	// (default 5m), aborting their open transaction.
	IdleTimeout time.Duration

	// HandshakeTimeout bounds the wait for the hello frame (default 10s).
	HandshakeTimeout time.Duration

	// WriteTimeout bounds each response write (default 30s).
	WriteTimeout time.Duration

	// MaxFrame caps accepted frame length (default proto.MaxFrame).
	MaxFrame int

	// DrainTimeout is how long Close lets in-flight work finish before
	// aborting stragglers (default 5s). Drain takes an explicit deadline.
	DrainTimeout time.Duration
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Addr == "" {
		out.Addr = "127.0.0.1:0"
	}
	if out.MaxSessions <= 0 {
		out.MaxSessions = 1024
	}
	if out.SessionQueue <= 0 {
		out.SessionQueue = 8
	}
	if out.MaxInFlight <= 0 {
		out.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if out.QueueWait <= 0 {
		out.QueueWait = 25 * time.Millisecond
	}
	if out.IdleTimeout <= 0 {
		out.IdleTimeout = 5 * time.Minute
	}
	if out.HandshakeTimeout <= 0 {
		out.HandshakeTimeout = 10 * time.Second
	}
	if out.WriteTimeout <= 0 {
		out.WriteTimeout = 30 * time.Second
	}
	if out.MaxFrame <= 0 || out.MaxFrame > proto.MaxFrame {
		out.MaxFrame = proto.MaxFrame
	}
	if out.DrainTimeout <= 0 {
		out.DrainTimeout = 5 * time.Second
	}
	return out
}

// ErrServerClosed is returned by Start after Drain or Close.
var ErrServerClosed = errors.New("server: closed")

// Server is a running kimsrv instance.
type Server struct {
	db   *oodb.DB
	opts Options

	ln       net.Listener
	mu       sync.Mutex
	conns    map[*conn]struct{}
	draining atomic.Bool
	started  atomic.Bool

	sessionSeq atomic.Uint64
	sessions   atomic.Int64 // active sessions (mirrors mSessionsActive)
	inflight   chan struct{}

	wg          sync.WaitGroup // accept loop + connection goroutines
	janitorStop chan struct{}

	// testHook, when set, runs inside request execution after admission;
	// tests use it to hold sessions busy or to inject panics.
	testHook func(verb byte)
}

// New returns an unstarted server over db.
func New(db *oodb.DB, opts Options) *Server {
	o := opts.withDefaults()
	return &Server{
		db:          db,
		opts:        o,
		conns:       make(map[*conn]struct{}),
		inflight:    make(chan struct{}, o.MaxInFlight),
		janitorStop: make(chan struct{}),
	}
}

// Start opens the listener and begins accepting sessions. It returns once
// the server is listening; Addr reports the bound address.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.started.Store(true)
	s.wg.Add(2)
	go s.acceptLoop(ln)
	go s.janitor()
	obs.Logf("server: listening on %s (max_sessions=%d max_inflight=%d)",
		ln.Addr(), s.opts.MaxSessions, s.opts.MaxInFlight)
	return nil
}

// Addr returns the bound listen address (nil before Start).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Sessions returns the number of active sessions.
func (s *Server) Sessions() int { return int(s.sessions.Load()) }

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			// Listener closed (drain) or fatal accept error: stop.
			return
		}
		s.wg.Add(1)
		go s.serveConn(nc)
	}
}

// janitor scans sessions for idle eviction.
func (s *Server) janitor() {
	defer s.wg.Done()
	period := s.opts.IdleTimeout / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			cutoff := time.Now().Add(-s.opts.IdleTimeout).UnixNano()
			s.mu.Lock()
			var evict []*conn
			for c := range s.conns {
				if c.lastActive.Load() < cutoff {
					evict = append(evict, c)
				}
			}
			s.mu.Unlock()
			for _, c := range evict {
				c.evict()
			}
		}
	}
}

func (s *Server) addConn(c *conn) {
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Drain performs a graceful shutdown: refuse new sessions, let queued and
// in-flight requests finish (commits included), abort sessions that are
// still running after timeout, then checkpoint the engine. It is safe to
// call once; the listener does not reopen.
func (s *Server) Drain(timeout time.Duration) error {
	if !s.started.Load() {
		return ErrServerClosed
	}
	if s.draining.Swap(true) {
		return ErrServerClosed // already draining
	}
	mDrains.Add(1)
	obs.Logf("server: drain started (timeout %v)", timeout)
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	close(s.janitorStop)

	// Ask every session to stop reading new requests and finish what it
	// has queued. startDrain kicks the blocked frame read with an
	// immediate read deadline; the reader treats that as end-of-input
	// rather than an error, so responses already in flight still go out.
	s.mu.Lock()
	for c := range s.conns {
		c.startDrain()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		// Stragglers: force-close their connections. Session teardown
		// aborts any open transaction, releasing its locks.
		obs.Logf("server: drain deadline reached; force-closing %d sessions", s.Sessions())
		s.mu.Lock()
		for c := range s.conns {
			_ = c.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}

	// Every session is gone; make the drained state durable so a restart
	// replays nothing and starts from a clean log.
	if err := s.db.Checkpoint(); err != nil {
		return fmt.Errorf("server: drain checkpoint: %w", err)
	}
	obs.Logf("server: drain complete")
	return nil
}

// Close drains with the configured DrainTimeout.
func (s *Server) Close() error { return s.Drain(s.opts.DrainTimeout) }

// Draining reports whether the server has begun shutdown.
func (s *Server) Draining() bool { return s.draining.Load() }
