package maint

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"time"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/obs"
	"oodb/internal/schema"
	"oodb/internal/storage"
)

// openDB opens a fresh database with one class P{n Integer, pad String}.
func openDB(t *testing.T) (*core.DB, *schema.Class, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := core.Open(dir, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	cl, err := db.DefineClass("P", nil,
		schema.AttrSpec{Name: "n", Domain: schema.ClassInteger},
		schema.AttrSpec{Name: "pad", Domain: schema.ClassString})
	if err != nil {
		t.Fatal(err)
	}
	return db, cl, dir
}

// fragment inserts n padded objects into cl and deletes all but every
// keepEvery-th, leaving the segment long and mostly dead. Returns the
// surviving OIDs.
func fragment(t *testing.T, db *core.DB, cl *schema.Class, n, keepEvery int) []model.OID {
	t.Helper()
	pad := strings.Repeat("x", 200)
	oids := make([]model.OID, n)
	if err := db.Do(func(tx *core.Tx) error {
		for i := range oids {
			oid, err := tx.InsertClass(cl.ID, map[string]model.Value{
				"n": model.Int(int64(i)), "pad": model.String(pad)})
			if err != nil {
				return err
			}
			oids[i] = oid
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var kept []model.OID
	if err := db.Do(func(tx *core.Tx) error {
		for i, oid := range oids {
			if i%keepEvery == 0 {
				kept = append(kept, oid)
				continue
			}
			if err := tx.Delete(oid); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return kept
}

// leakPages manufactures durable garbage the way a crash inside the
// detach→checkpoint→free window does: a segment the durable metadata no
// longer names, never freed.
func leakPages(t *testing.T, db *core.DB) {
	t.Helper()
	const orphan = model.ClassID(4001)
	if err := db.Store.CreateSegment(orphan); err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("L", 3*storage.PageSize)
	for i := 0; i < 4; i++ {
		oid, err := db.Store.NewOID(orphan)
		if err != nil {
			t.Fatal(err)
		}
		o := model.NewObject(oid)
		o.Set(1, model.String(big))
		if err := db.Store.Put(oid, model.EncodeObject(o)); err != nil {
			t.Fatal(err)
		}
	}
	if db.Store.DetachSegment(orphan) == nil {
		t.Fatal("detach returned nil")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestSweepReclaimsAndCompacts is the subsystem's acceptance test: after a
// leak workload plus heavy fragmentation, one sweep reclaims every leaked
// page (driving storage_account_leaked_pages to zero), compacts the
// fragmented segment, and leaves every surviving object readable.
func TestSweepReclaimsAndCompacts(t *testing.T) {
	db, cl, _ := openDB(t)
	kept := fragment(t, db, cl, 2000, 10)
	leakPages(t, db)

	acct, err := db.Store.AccountPages()
	if err != nil {
		t.Fatal(err)
	}
	if acct.Leaked == 0 {
		t.Fatal("leak workload produced no leaked pages")
	}
	if g := obs.TakeSnapshot().Gauges["storage_account_leaked_pages"]; g == 0 {
		t.Fatal("leak gauge not raised before the sweep")
	}
	infoBefore, err := db.SegmentInfo(cl.ID)
	if err != nil {
		t.Fatal(err)
	}

	m := New(db, Options{})
	rep, err := m.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Busy {
		t.Fatal("sweep reported busy on an idle database")
	}
	if uint64(rep.Reclaimed) != acct.Leaked {
		t.Fatalf("sweep reclaimed %d pages, want %d", rep.Reclaimed, acct.Leaked)
	}
	if rep.Compacted == 0 || rep.PagesFreed == 0 {
		t.Fatalf("sweep did not compact the fragmented segment: %+v", rep)
	}
	if g := obs.TakeSnapshot().Gauges["storage_account_leaked_pages"]; g != 0 {
		t.Fatalf("storage_account_leaked_pages = %d after sweep, want 0", g)
	}
	after, err := db.Store.AccountPages()
	if err != nil {
		t.Fatal(err)
	}
	if after.Leaked != 0 {
		t.Fatalf("%d pages still leaked after sweep (ids %v)", after.Leaked, after.LeakedPages)
	}
	infoAfter, err := db.SegmentInfo(cl.ID)
	if err != nil {
		t.Fatal(err)
	}
	if infoAfter.Pages >= infoBefore.Pages {
		t.Fatalf("segment not compacted: %d -> %d pages", infoBefore.Pages, infoAfter.Pages)
	}
	for _, oid := range kept {
		if _, err := db.FetchObject(oid); err != nil {
			t.Fatalf("object %s unreadable after sweep: %v", oid, err)
		}
	}
	// The sweep analyzed the class in the same pass.
	cs := db.Stats.Get(cl.ID)
	if cs == nil || cs.Cardinality != uint64(len(kept)) {
		t.Fatalf("stats after sweep = %+v, want cardinality %d", cs, len(kept))
	}
}

// TestSweepTriggerPolicy verifies the sweep leaves alone what its policy
// says to leave alone: dense segments and segments below the size floor.
func TestSweepTriggerPolicy(t *testing.T) {
	db, cl, _ := openDB(t)
	// Dense: everything inserted, nothing deleted.
	fragment(t, db, cl, 1000, 1)
	m := New(db, Options{})
	rep, err := m.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compacted != 0 {
		t.Fatalf("sweep compacted a dense segment: %+v", rep)
	}

	// Sparse but tiny: below MinPages.
	db2, cl2, _ := openDB(t)
	fragment(t, db2, cl2, 40, 40)
	info, err := db2.SegmentInfo(cl2.ID)
	if err != nil {
		t.Fatal(err)
	}
	m2 := New(db2, Options{MinPages: info.Pages + 1})
	rep2, err := m2.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Compacted != 0 {
		t.Fatalf("sweep compacted a segment below the size floor: %+v", rep2)
	}
}

// TestAnalyzeStatsValues pins the collector's numbers on a known dataset:
// exact cardinality, per-attribute counts, exact distinct estimates below
// the sketch size, and correct bounds.
func TestAnalyzeStatsValues(t *testing.T) {
	db, cl, _ := openDB(t)
	// 120 objects; n cycles 0..29 (30 distinct), pad is one of 2 values.
	const total, distinctN = 120, 30
	if err := db.Do(func(tx *core.Tx) error {
		for i := 0; i < total; i++ {
			pad := "even"
			if i%2 == 1 {
				pad = "odd"
			}
			if _, err := tx.InsertClass(cl.ID, map[string]model.Value{
				"n": model.Int(int64(i % distinctN)), "pad": model.String(pad)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	m := New(db, Options{})
	cs, err := m.AnalyzeClass(cl.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Cardinality != total {
		t.Fatalf("cardinality = %d, want %d", cs.Cardinality, total)
	}
	if cs.AvgSize() <= 0 {
		t.Fatalf("avg size = %f", cs.AvgSize())
	}
	attrs, err := db.Catalog.EffectiveAttrs(cl.ID)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*schema.Attribute{}
	for _, a := range attrs {
		byName[a.Name] = a
	}
	an := cs.Attr(byName["n"].ID)
	if an == nil || an.Count != total || an.Distinct != distinctN {
		t.Fatalf("attr n stats = %+v, want count=%d distinct=%d", an, total, distinctN)
	}
	if model.Compare(an.Min, model.Int(0)) != 0 || model.Compare(an.Max, model.Int(distinctN-1)) != 0 {
		t.Fatalf("attr n bounds = [%v, %v], want [0, %d]", an.Min, an.Max, distinctN-1)
	}
	ap := cs.Attr(byName["pad"].ID)
	if ap == nil || ap.Count != total || ap.Distinct != 2 {
		t.Fatalf("attr pad stats = %+v, want count=%d distinct=2", ap, total)
	}

	// The registry round-trips through its durable encoding: reopen and
	// compare after AnalyzeAll persisted it.
	if _, err := m.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
}

// TestStatsSurviveReopen verifies analyzed statistics persist across a
// clean close and reopen (the registry rides the checkpoint root swap).
func TestStatsSurviveReopen(t *testing.T) {
	db, cl, dir := openDB(t)
	fragment(t, db, cl, 300, 3)
	m := New(db, Options{})
	if _, err := m.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	want := db.Stats.Get(cl.ID)
	if want == nil {
		t.Fatal("no stats after analyze")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := core.Open(dir, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got := db2.Stats.Get(cl.ID)
	if got == nil {
		t.Fatal("stats lost across reopen")
	}
	if got.Cardinality != want.Cardinality || got.TotalBytes != want.TotalBytes {
		t.Fatalf("reopened stats = %+v, want %+v", got, want)
	}
}

// TestCompactionInvisible is the differential test: the logical database —
// every OID and every attribute byte — is identical before and after a
// compaction, across a reopen, overflow objects included.
func TestCompactionInvisible(t *testing.T) {
	db, cl, dir := openDB(t)
	big := strings.Repeat("O", 3*storage.PageSize)
	var oids []model.OID
	if err := db.Do(func(tx *core.Tx) error {
		for i := 0; i < 400; i++ {
			pad := "small"
			if i%25 == 0 {
				pad = big
			}
			oid, err := tx.InsertClass(cl.ID, map[string]model.Value{
				"n": model.Int(int64(i)), "pad": model.String(pad)})
			if err != nil {
				return err
			}
			oids = append(oids, oid)
		}
		for i, oid := range oids {
			if i%3 == 0 {
				if err := tx.Delete(oid); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	snapshot := func(d *core.DB) map[model.OID][]byte {
		out := make(map[model.OID][]byte)
		if err := d.Store.ScanClass(cl.ID, func(oid model.OID, data []byte) bool {
			out[oid] = append([]byte(nil), data...)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	before := snapshot(db)

	m := New(db, Options{})
	if _, err := m.CompactClass(cl.ID); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := core.Open(dir, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	after := snapshot(db2)

	if len(before) != len(after) {
		t.Fatalf("row count changed across compaction: %d -> %d", len(before), len(after))
	}
	keys := make([]model.OID, 0, len(before))
	for oid := range before {
		keys = append(keys, oid)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, oid := range keys {
		b, ok := after[oid]
		if !ok {
			t.Fatalf("object %s lost across compaction", oid)
		}
		if !bytes.Equal(before[oid], b) {
			t.Fatalf("object %s bytes changed across compaction", oid)
		}
	}
}

// TestReclaimYieldsToTransactions verifies the reclaimer's begin fence:
// with a transaction in flight the walk would misclassify its uncommitted
// pages, so the manager must yield with ErrBusy instead of freeing them.
func TestReclaimYieldsToTransactions(t *testing.T) {
	db, cl, _ := openDB(t)
	tx := db.Begin()
	if _, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(1)}); err != nil {
		t.Fatal(err)
	}
	m := New(db, Options{})
	if _, err := m.ReclaimLeaked(); err != core.ErrBusy {
		t.Fatalf("reclaim with a live transaction = %v, want ErrBusy", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReclaimLeaked(); err != nil {
		t.Fatalf("reclaim after commit: %v", err)
	}
}

// TestStartStop exercises the background loop lifecycle.
func TestStartStop(t *testing.T) {
	db, _, _ := openDB(t)
	m := New(db, Options{Interval: time.Millisecond})
	m.Start()
	m.Start() // idempotent
	time.Sleep(20 * time.Millisecond)
	m.Stop()
	m.Stop() // idempotent
	if n := obs.TakeSnapshot().Counters["maint_sweep_runs_total"]; n == 0 {
		t.Fatal("background loop never swept")
	}
}

// TestAnalyzeIgnoresUncommitted pins the snapshot-read fix: ANALYZE used
// to scan the raw heap and fold a concurrent writer's uncommitted rows
// into the planner statistics — rows an abort then made vanish, leaving
// the selectivity model describing a state that never existed. The
// statistics must describe committed truth before, during and after the
// writer's rollback.
func TestAnalyzeIgnoresUncommitted(t *testing.T) {
	db, cl, _ := openDB(t)
	const committed, uncommitted = 10, 50
	if err := db.Do(func(tx *core.Tx) error {
		for i := 0; i < committed; i++ {
			if _, err := tx.InsertClass(cl.ID, map[string]model.Value{
				"n": model.Int(int64(i))}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Bulk insert, left in flight: the rows are on the heap, uncommitted.
	w := db.Begin()
	for i := 0; i < uncommitted; i++ {
		if _, err := w.InsertClass(cl.ID, map[string]model.Value{
			"n": model.Int(int64(1000 + i))}); err != nil {
			t.Fatal(err)
		}
	}

	m := New(db, Options{})
	cs, err := m.AnalyzeClass(cl.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Cardinality != committed {
		t.Fatalf("ANALYZE under in-flight writer: cardinality = %d, want %d (uncommitted rows counted)", cs.Cardinality, committed)
	}

	// The writer aborts mid-ANALYZE era; the statistics stay truthful.
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	cs, err = m.AnalyzeClass(cl.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Cardinality != committed {
		t.Fatalf("ANALYZE after abort: cardinality = %d, want %d", cs.Cardinality, committed)
	}
}

// TestReclaimStarvedCounter verifies a quiesce that times out is visible
// as maint_reclaim_starved, the operator's signal that the window is too
// small for the workload.
func TestReclaimStarvedCounter(t *testing.T) {
	db, cl, _ := openDB(t)
	tx := db.Begin()
	if _, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(1)}); err != nil {
		t.Fatal(err)
	}
	before := mReclaimStarved.Value()
	m := New(db, Options{ReclaimWait: time.Millisecond})
	if _, err := m.ReclaimLeaked(); err != core.ErrBusy {
		t.Fatalf("reclaim against a held transaction = %v, want ErrBusy", err)
	}
	if got := mReclaimStarved.Value(); got != before+1 {
		t.Fatalf("maint_reclaim_starved = %d, want %d", got, before+1)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}
