package maint

import (
	"testing"

	"oodb/internal/composite"
	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/obs"
	"oodb/internal/schema"
)

// scanOrder returns the class's OIDs in physical scan order.
func scanOrder(t *testing.T, db *core.DB, class model.ClassID) []model.OID {
	t.Helper()
	var order []model.OID
	if err := db.Store.ScanClass(class, func(oid model.OID, _ []byte) bool {
		order = append(order, oid)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return order
}

// buildCompositeWorld creates class "Asm" with a composite self-referencing
// "kids" set, three parents each owning three children, inserted so that
// scan order interleaves parents and children of different families.
// Returns the class and parents[i] -> children[i] structure.
func buildCompositeWorld(t *testing.T, db *core.DB) (*schema.Class, []model.OID, [][]model.OID) {
	t.Helper()
	cl, err := db.DefineClass("Asm", nil,
		schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddAttribute(cl.ID, schema.AttrSpec{Name: "kids", Domain: cl.ID, SetValued: true}); err != nil {
		t.Fatal(err)
	}
	cm, err := composite.New(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.DeclareComposite(cl.ID, "kids", false); err != nil {
		t.Fatal(err)
	}
	const families = 3
	parents := make([]model.OID, families)
	children := make([][]model.OID, families)
	if err := db.Do(func(tx *core.Tx) error {
		for f := 0; f < families; f++ {
			oid, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(int64(f))})
			if err != nil {
				return err
			}
			parents[f] = oid
		}
		// Children inserted round-robin across families: family 0's children
		// sit at scan positions 3, 6, 9 — nowhere near their parent.
		for c := 0; c < 3; c++ {
			for f := 0; f < families; f++ {
				oid, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(int64(100 + f*10 + c))})
				if err != nil {
					return err
				}
				children[f] = append(children[f], oid)
			}
		}
		for f := 0; f < families; f++ {
			kids := make([]model.Value, 0, 3)
			for _, c := range children[f] {
				kids = append(kids, model.Ref(c))
			}
			if err := tx.Update(parents[f], map[string]model.Value{"kids": model.Set(kids...)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return cl, parents, children
}

// TestCompositePlacementClustersFamilies compacts under ClusterComposite
// and verifies each parent is immediately followed by its own children in
// physical order, parents in scan order.
func TestCompositePlacementClustersFamilies(t *testing.T) {
	dir := t.TempDir()
	db, err := core.Open(dir, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cl, parents, children := buildCompositeWorld(t, db)

	m := New(db, Options{Clustering: ClusterComposite})
	res, err := m.CompactClass(cl.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reordered == 0 {
		t.Fatal("composite placement moved nothing on an interleaved layout")
	}
	order := scanOrder(t, db, cl.ID)
	var expect []model.OID
	for f := range parents {
		expect = append(expect, parents[f])
		expect = append(expect, children[f]...)
	}
	if len(order) != len(expect) {
		t.Fatalf("scan sees %d objects, want %d", len(order), len(expect))
	}
	for i := range expect {
		if order[i] != expect[i] {
			t.Fatalf("position %d = %s, want %s\n got %v\nwant %v", i, order[i], expect[i], order, expect)
		}
	}
}

// TestCompositePlacementHandlesCycles builds a purely cyclic part-of graph
// (every object is someone's child, so there is no root) and verifies the
// clustered rewrite still emits every object exactly once — the
// second-sweep DFS, not the tail-append fallback, with cycle members laid
// adjacently.
func TestCompositePlacementHandlesCycles(t *testing.T) {
	dir := t.TempDir()
	db, err := core.Open(dir, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cl, err := db.DefineClass("Ring", nil,
		schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddAttribute(cl.ID, schema.AttrSpec{Name: "next", Domain: cl.ID}); err != nil {
		t.Fatal(err)
	}
	cm, err := composite.New(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.DeclareComposite(cl.ID, "next", false); err != nil {
		t.Fatal(err)
	}
	const n = 7
	oids := make([]model.OID, n)
	if err := db.Do(func(tx *core.Tx) error {
		for i := range oids {
			oid, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(int64(i))})
			if err != nil {
				return err
			}
			oids[i] = oid
		}
		for i, oid := range oids {
			if err := tx.Update(oid, map[string]model.Value{"next": model.Ref(oids[(i+1)%n])}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	m := New(db, Options{Clustering: ClusterComposite})
	if _, err := m.CompactClass(cl.ID); err != nil {
		t.Fatal(err)
	}
	order := scanOrder(t, db, cl.ID)
	if len(order) != n {
		t.Fatalf("scan sees %d objects, want %d", len(order), n)
	}
	// The DFS from the first scan OID must walk the whole ring in link
	// order: oids[0], oids[1], ..., oids[n-1].
	for i := range oids {
		if order[i] != oids[i] {
			t.Fatalf("cycle order at %d = %s, want %s", i, order[i], oids[i])
		}
	}
}

// TestHeatPlacementOrdersByFetchCount fetches a known subset with distinct
// frequencies and verifies ClusterHot lays the segment in descending fetch
// order with the cold tail in scan order, and that consuming the heat
// resets the tracker.
func TestHeatPlacementOrdersByFetchCount(t *testing.T) {
	db, cl, _ := openDB(t)
	kept := fragment(t, db, cl, 200, 10) // 20 survivors

	// Heat: kept[5] hottest, then kept[10], then kept[15].
	db.Store.ResetAccessCounts()
	for i, reps := range map[int]int{5: 9, 10: 6, 15: 3} {
		for r := 0; r < reps; r++ {
			if _, err := db.FetchObject(kept[i]); err != nil {
				t.Fatal(err)
			}
		}
	}

	m := New(db, Options{Clustering: ClusterHot})
	res, err := m.CompactClass(cl.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reordered == 0 {
		t.Fatal("heat placement moved nothing despite skewed fetch counts")
	}
	order := scanOrder(t, db, cl.ID)
	if len(order) != len(kept) {
		t.Fatalf("scan sees %d objects, want %d", len(order), len(kept))
	}
	if order[0] != kept[5] || order[1] != kept[10] || order[2] != kept[15] {
		t.Fatalf("hot head = %v, want [%s %s %s]", order[:3], kept[5], kept[10], kept[15])
	}
	// Cold tail keeps scan order (ties broken stably).
	want := 3
	for _, oid := range kept {
		if oid == kept[5] || oid == kept[10] || oid == kept[15] {
			continue
		}
		if order[want] != oid {
			t.Fatalf("cold tail at %d = %s, want %s", want, order[want], oid)
		}
		want++
	}
	// The compaction consumed the heat: tracker is reset.
	if n := len(db.Store.AccessCounts()); n != 0 {
		t.Fatalf("tracker still holds %d keys after heat-ordered compaction", n)
	}
}

// TestClusterOverrideAndMetrics pins per-class policy override resolution
// and the maint_cluster_* counters: a class overridden to ClusterNone
// under a ClusterHot default compacts without touching the clustering
// counters, and vice versa.
func TestClusterOverrideAndMetrics(t *testing.T) {
	db, cl, _ := openDB(t)
	kept := fragment(t, db, cl, 200, 10)
	for r := 0; r < 5; r++ { // skewed heat so ClusterHot would reorder
		if _, err := db.FetchObject(kept[len(kept)-1]); err != nil {
			t.Fatal(err)
		}
	}

	m := New(db, Options{
		Clustering:      ClusterHot,
		ClusterOverride: map[model.ClassID]ClusterPolicy{cl.ID: ClusterNone},
	})
	if got := m.policyFor(cl.ID); got != ClusterNone {
		t.Fatalf("override policy = %v, want ClusterNone", got)
	}
	if got := m.policyFor(model.ClassID(999)); got != ClusterHot {
		t.Fatalf("default policy = %v, want ClusterHot", got)
	}

	before := obs.TakeSnapshot().Counters["maint_cluster_compactions_total"]
	if _, err := m.CompactClass(cl.ID); err != nil {
		t.Fatal(err)
	}
	after := obs.TakeSnapshot().Counters["maint_cluster_compactions_total"]
	if after != before {
		t.Fatalf("overridden-to-none compaction bumped maint_cluster_compactions_total (%d -> %d)", before, after)
	}

	// Remove the override: now the default ClusterHot applies and counts.
	m2 := New(db, Options{Clustering: ClusterHot})
	res, err := m2.CompactClass(cl.ID)
	if err != nil {
		t.Fatal(err)
	}
	snap := obs.TakeSnapshot().Counters
	if got := snap["maint_cluster_compactions_total"]; got != after+1 {
		t.Fatalf("maint_cluster_compactions_total = %d, want %d", got, after+1)
	}
	if res.Reordered > 0 && snap["maint_cluster_objects_reordered"] == 0 {
		t.Fatal("maint_cluster_objects_reordered not bumped")
	}
}

// TestClusterPolicyString pins the metric/report labels.
func TestClusterPolicyString(t *testing.T) {
	for p, want := range map[ClusterPolicy]string{
		ClusterNone: "none", ClusterComposite: "composite", ClusterHot: "hot",
	} {
		if got := p.String(); got != want {
			t.Fatalf("policy %d String() = %q, want %q", p, got, want)
		}
	}
}
