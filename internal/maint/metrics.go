package maint

import "oodb/internal/obs"

// Maintenance metrics (obs registry). Sweep counters tell the operator the
// loop is alive; compaction counters quantify what it recovered.
var (
	mSweepRuns         = obs.RegisterCounter("maint_sweep_runs_total")
	mSweepBusy         = obs.RegisterCounter("maint_sweep_busy_yields")
	mSweepNs           = obs.RegisterHistogram("maint_sweep_duration_ns")
	mCompactRuns       = obs.RegisterCounter("maint_compact_segments_total")
	mCompactPagesFreed = obs.RegisterCounter("maint_compact_pages_freed")
	mCompactObjects    = obs.RegisterCounter("maint_compact_objects_moved")
	mCompactNs         = obs.RegisterHistogram("maint_compact_duration_ns")
	mReclaimPages      = obs.RegisterCounter("maint_reclaim_pages_freed")
	mReclaimStarved    = obs.RegisterCounter("maint_reclaim_starved")
	mStatsAnalyzed     = obs.RegisterCounter("maint_stats_classes_analyzed")

	// Clustering counters: how many compactions ran under a non-default
	// placement policy, and how many records those placements actually
	// moved away from scan order (CompactResult.Reordered).
	mClusterCompactions = obs.RegisterCounter("maint_cluster_compactions_total")
	mClusterReordered   = obs.RegisterCounter("maint_cluster_objects_reordered")
)
