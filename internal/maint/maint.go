// Package maint is kimdb's online maintenance subsystem: a background
// manager that watches the storage accountant's fragmentation and leak
// signals, compacts heap segments live (reclustering each class's objects
// into densely packed pages), reclaims pages leaked by crashes inside the
// detach→checkpoint→free window, and collects the per-class statistics the
// query planner's selectivity model consumes (internal/stats →
// internal/query). Kim §5 calls out performance as the open front for
// OODBs; a database that runs for months needs its physical layout and its
// optimizer statistics maintained while it serves traffic — this package
// is that janitor.
//
// All mechanisms live in internal/core (CompactClass, ReclaimLeaked,
// AnalyzeClass) and inherit the crash-safety protocol proven by the fault
// harness; this package supplies only policy, scheduling and metrics.
package maint

import (
	"sync"
	"time"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/stats"
	"oodb/internal/storage"
)

// Options tunes the maintenance policy. Zero values select defaults.
type Options struct {
	// Interval between background sweeps (default 30s).
	Interval time.Duration
	// LeakThreshold is the leaked-page count at which a sweep runs the
	// reclaimer (default 1: any leak is reclaimed).
	LeakThreshold uint64
	// MinOccupancy triggers compaction when a segment's live-byte occupancy
	// falls below it (default 0.5).
	MinOccupancy float64
	// MinPages exempts segments smaller than this from compaction — a
	// near-empty two-page segment is not worth a rewrite (default 4).
	MinPages int
	// ReclaimWait bounds the quiesce window the reclaimer may hold new
	// transaction begins open while in-flight ones drain (default 100ms).
	// Without it, any steady trickle of transactions starves the
	// reclaimer forever and leaked pages accumulate unbounded.
	ReclaimWait time.Duration
	// Clustering selects the placement policy compactions use (default
	// ClusterNone: physical scan order, byte-identical to the
	// pre-clustering compactor). See cluster.go.
	Clustering ClusterPolicy
	// ClusterOverride pins a policy per class, overriding Clustering —
	// e.g. composite clustering for the CAD assembly class while the rest
	// of the database keeps scan order.
	ClusterOverride map[model.ClassID]ClusterPolicy
}

func (o Options) withDefaults() Options {
	if o.Interval == 0 {
		o.Interval = 30 * time.Second
	}
	if o.LeakThreshold == 0 {
		o.LeakThreshold = 1
	}
	if o.MinOccupancy == 0 {
		o.MinOccupancy = 0.5
	}
	if o.MinPages == 0 {
		o.MinPages = 4
	}
	if o.ReclaimWait == 0 {
		o.ReclaimWait = 100 * time.Millisecond
	}
	return o
}

// Manager runs maintenance for one database. All entry points are safe for
// concurrent use; sweeps are serialized against each other.
type Manager struct {
	db   *core.DB
	opts Options

	mu      sync.Mutex // serializes sweeps and Start/Stop state
	started bool
	stop    chan struct{}
	done    chan struct{}
}

// New returns a manager over db. The background loop does not run until
// Start; every operation is also available on demand.
func New(db *core.DB, opts Options) *Manager {
	return &Manager{db: db, opts: opts.withDefaults()}
}

// SweepReport summarizes one maintenance sweep.
type SweepReport struct {
	Compacted     int  // segments rewritten
	PagesFreed    int  // pages released by compaction (before minus after)
	Reclaimed     int  // leaked pages freed by the reclaimer
	Analyzed      int  // classes whose statistics were refreshed
	VersionChains int  // MVCC chains still live after the vacuum
	Busy          bool // some step yielded to in-flight transactions
}

// Start launches the background sweep loop.
func (m *Manager) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return
	}
	m.started = true
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go m.loop(m.stop, m.done)
}

// Stop halts the background loop and waits for an in-flight sweep to
// finish. Safe to call multiple times or without Start.
func (m *Manager) Stop() {
	m.mu.Lock()
	if !m.started {
		m.mu.Unlock()
		return
	}
	m.started = false
	stop, done := m.stop, m.done
	m.mu.Unlock()
	close(stop)
	<-done
}

func (m *Manager) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(m.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			// Best-effort: a failed sweep (e.g. the database closed under
			// us) leaves the data intact and the next tick retries.
			_, _ = m.RunOnce()
		}
	}
}

// RunOnce performs one full sweep: account pages, reclaim leaks past the
// threshold, compact every fragmented segment (collecting statistics in
// the same pass), and persist what changed.
func (m *Manager) RunOnce() (SweepReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mSweepRuns.Add(1)
	t0 := time.Now()
	defer func() { mSweepNs.Observe(uint64(time.Since(t0))) }()

	var rep SweepReport
	// Version GC first: prune chains no live snapshot can still see, so
	// the sweep's own snapshot reads (AnalyzeClass) start from a small
	// overlay.
	rep.VersionChains = m.db.Versions.Vacuum()
	acct, err := m.db.Store.AccountPages()
	if err != nil {
		return rep, err
	}
	if acct.Leaked >= m.opts.LeakThreshold {
		// Bounded quiesce: briefly hold new begins and let in-flight
		// transactions drain. A sweep that still cannot quiesce counts as
		// starved — a run of those is the signal the window is too small
		// for the workload.
		n, err := m.db.ReclaimLeakedWait(m.opts.ReclaimWait)
		switch {
		case err == core.ErrBusy:
			rep.Busy = true
			mSweepBusy.Add(1)
			mReclaimStarved.Add(1)
		case err != nil:
			return rep, err
		default:
			rep.Reclaimed = n
			mReclaimPages.Add(uint64(n))
		}
	}
	for _, cl := range m.db.Catalog.Classes() {
		info, err := m.db.SegmentInfo(cl.ID)
		if err != nil {
			return rep, err
		}
		if info == nil || info.Pages < m.opts.MinPages || info.Occupancy >= m.opts.MinOccupancy {
			continue
		}
		res, err := m.compact(cl.ID)
		if err != nil {
			return rep, err
		}
		rep.Compacted++
		rep.Analyzed++
		if res.PagesBefore > res.PagesAfter {
			rep.PagesFreed += res.PagesBefore - res.PagesAfter
		}
	}
	if rep.Analyzed > 0 {
		// Compaction's DDL checkpoint ran before the statistics landed in
		// the registry; persist them now so a crash keeps the fresh model.
		if err := m.db.Checkpoint(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// CompactClass rewrites one class's segment on demand, refreshing its
// statistics in the same sweep.
func (m *Manager) CompactClass(class model.ClassID) (*storage.CompactResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.compact(class)
}

func (m *Manager) compact(class model.ClassID) (*storage.CompactResult, error) {
	t0 := time.Now()
	policy := m.policyFor(class)
	order, err := m.placement(class, policy)
	if err != nil {
		return nil, err
	}
	col := stats.NewCollector(class)
	res, err := m.db.CompactClassOrdered(class, order, func(oid model.OID, data []byte) {
		if obj, derr := model.DecodeObject(data); derr == nil {
			col.Observe(obj, len(data))
		}
	})
	if err != nil {
		return nil, err
	}
	m.db.Stats.Put(col.Finalize())
	mCompactRuns.Add(1)
	mStatsAnalyzed.Add(1)
	mCompactObjects.Add(uint64(res.LiveRecords))
	if res.PagesBefore > res.PagesAfter {
		mCompactPagesFreed.Add(uint64(res.PagesBefore - res.PagesAfter))
	}
	if policy != ClusterNone {
		mClusterCompactions.Add(1)
		mClusterReordered.Add(uint64(res.Reordered))
		if policy == ClusterHot {
			// Heat consumed: reset so the next heat-ordered compaction sees
			// the workload since this one, not all history.
			m.db.Store.ResetAccessCounts()
		}
	}
	mCompactNs.Observe(uint64(time.Since(t0)))
	return res, nil
}

// CompactAll rewrites every class segment (the kimsh `.compact` command
// with no argument) and returns per-class results keyed by class id.
func (m *Manager) CompactAll() (map[model.ClassID]*storage.CompactResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[model.ClassID]*storage.CompactResult)
	for _, cl := range m.db.Catalog.Classes() {
		info, err := m.db.SegmentInfo(cl.ID)
		if err != nil {
			return out, err
		}
		if info == nil {
			continue
		}
		res, err := m.compact(cl.ID)
		if err != nil {
			return out, err
		}
		out[cl.ID] = res
	}
	if len(out) > 0 {
		if err := m.db.Checkpoint(); err != nil {
			return out, err
		}
	}
	return out, nil
}

// AnalyzeClass refreshes one class's statistics without rewriting its
// segment — the cheap path for healthy segments.
func (m *Manager) AnalyzeClass(class model.ClassID) (*stats.ClassStats, error) {
	col := stats.NewCollector(class)
	err := m.db.AnalyzeClass(class, func(oid model.OID, data []byte) {
		if obj, derr := model.DecodeObject(data); derr == nil {
			col.Observe(obj, len(data))
		}
	})
	if err != nil {
		return nil, err
	}
	cs := col.Finalize()
	m.db.Stats.Put(cs)
	mStatsAnalyzed.Add(1)
	return cs, nil
}

// AnalyzeAll refreshes statistics for every class with a segment and
// persists the registry. Returns the number of classes analyzed.
func (m *Manager) AnalyzeAll() (int, error) {
	n := 0
	for _, cl := range m.db.Catalog.Classes() {
		info, err := m.db.SegmentInfo(cl.ID)
		if err != nil {
			return n, err
		}
		if info == nil {
			continue
		}
		if _, err := m.AnalyzeClass(cl.ID); err != nil {
			return n, err
		}
		n++
	}
	if n > 0 {
		if err := m.db.Checkpoint(); err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReclaimLeaked frees leaked pages on demand, quiescing for up to the
// configured ReclaimWait (ErrBusy when transactions outlast the window).
func (m *Manager) ReclaimLeaked() (int, error) {
	n, err := m.db.ReclaimLeakedWait(m.opts.ReclaimWait)
	switch {
	case err == core.ErrBusy:
		mReclaimStarved.Add(1)
	case err == nil:
		mReclaimPages.Add(uint64(n))
	}
	return n, err
}
