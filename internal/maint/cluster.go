package maint

import (
	"sort"

	"oodb/internal/composite"
	"oodb/internal/model"
	"oodb/internal/storage"
)

// Clustering policy: what order the compactor lays a segment's live
// records in when it rewrites it. Kim §4.2 names clustering as a core
// OODB performance lever; Darmont & Gruenwald's survey supplies the two
// families implemented here — placement by composite (aggregation)
// hierarchy and placement by access frequency. The policy decides layout
// only: every policy is logically invisible (same OIDs, same bytes, same
// index answers — pinned by TestClusteredRewriteLogicallyInvisible), so
// choosing one is purely a performance decision.

// ClusterPolicy selects a compaction placement policy.
type ClusterPolicy int

const (
	// ClusterNone keeps physical scan order — byte-identical to the
	// pre-clustering compactor. The default.
	ClusterNone ClusterPolicy = iota
	// ClusterComposite lays composite-object children adjacent to their
	// parents: a DFS over the class's part-of graph (internal/composite
	// declarations), roots in scan order. Objects navigationally close
	// become physically close — the OO1 traversal case.
	ClusterComposite
	// ClusterHot places frequently fetched objects first, ordered by the
	// per-object access counters sampled in Store.Get, so the working set
	// condenses onto the segment's leading pages. Counters are consumed
	// (reset) by each heat-ordered compaction, so placement tracks recent
	// heat rather than all history.
	ClusterHot
)

// String names the policy for reports and metrics.
func (p ClusterPolicy) String() string {
	switch p {
	case ClusterComposite:
		return "composite"
	case ClusterHot:
		return "hot"
	default:
		return "none"
	}
}

// policyFor resolves the effective policy for a class: per-class override
// first, then the manager-wide default.
func (m *Manager) policyFor(class model.ClassID) ClusterPolicy {
	if p, ok := m.opts.ClusterOverride[class]; ok {
		return p
	}
	return m.opts.Clustering
}

// placement builds the storage.Placement for a policy, or nil for
// ClusterNone. The returned closure runs inside the compaction's DDL
// critical section — writers of the class are excluded, and it only reads
// (lock-free FetchObject / atomic counter snapshots), so it cannot
// deadlock against the locks the compaction holds.
func (m *Manager) placement(class model.ClassID, policy ClusterPolicy) (storage.Placement, error) {
	switch policy {
	case ClusterComposite:
		// A fresh composite manager per compaction: declarations are
		// persisted objects, so reloading sees every DeclareComposite made
		// since the maint manager was built. Constructed here — before the
		// DDL critical section — because first use may define the
		// declaration class.
		cm, err := composite.New(m.db)
		if err != nil {
			return nil, err
		}
		return m.compositePlacement(cm), nil
	case ClusterHot:
		return m.heatPlacement(), nil
	default:
		return nil, nil
	}
}

// compositePlacement orders a segment by DFS over the part-of graph
// restricted to the compacted class: each root (a live object no other
// live object of the class references through a composite attribute) is
// laid down followed immediately by its within-class components, roots in
// scan order. A second sweep starts a DFS from every remaining unvisited
// object in scan order, so purely cyclic part-of subgraphs (no root) are
// still clustered rather than falling through to the tail-append. Links
// that leave the class influence nothing — heap segments are per-class,
// so only within-class adjacency is expressible.
func (m *Manager) compositePlacement(cm *composite.Manager) storage.Placement {
	return func(scanOrder []model.OID) []model.OID {
		inClass := make(map[model.OID]bool, len(scanOrder))
		for _, oid := range scanOrder {
			inClass[oid] = true
		}
		children := func(oid model.OID) []model.OID {
			refs, err := cm.DirectComponents(oid)
			if err != nil {
				return nil
			}
			return refs
		}
		isChild := make(map[model.OID]bool)
		for _, oid := range scanOrder {
			for _, r := range children(oid) {
				if inClass[r] && r != oid {
					isChild[r] = true
				}
			}
		}
		out := make([]model.OID, 0, len(scanOrder))
		seen := make(map[model.OID]bool, len(scanOrder))
		var dfs func(oid model.OID)
		dfs = func(oid model.OID) {
			if seen[oid] || !inClass[oid] {
				return
			}
			seen[oid] = true
			out = append(out, oid)
			for _, r := range children(oid) {
				dfs(r)
			}
		}
		for _, oid := range scanOrder {
			if !isChild[oid] {
				dfs(oid)
			}
		}
		for _, oid := range scanOrder {
			dfs(oid)
		}
		return out
	}
}

// heatPlacement orders a segment by descending fetch count from the
// store's access tracker; ties (including never-fetched objects, count 0)
// keep scan order, so the result is deterministic for a given counter
// state and the cold tail stays in today's layout.
func (m *Manager) heatPlacement() storage.Placement {
	return func(scanOrder []model.OID) []model.OID {
		counts := m.db.Store.AccessCounts()
		out := append([]model.OID(nil), scanOrder...)
		sort.SliceStable(out, func(i, j int) bool {
			return counts[out[i]] > counts[out[j]]
		})
		return out
	}
}
