package shard

import (
	"strconv"
	"testing"

	"oodb/internal/model"
)

func TestRingDeterministicAndBalanced(t *testing.T) {
	r1 := newRing(4, 64)
	r2 := newRing(4, 64)
	counts := make([]int, 4)
	for i := 0; i < 10000; i++ {
		key := "Part#" + strconv.Itoa(i)
		m := r1.owner(key, nil)
		if m2 := r2.owner(key, nil); m2 != m {
			t.Fatalf("ring not deterministic: key %q -> %d vs %d", key, m, m2)
		}
		counts[m]++
	}
	for m, n := range counts {
		if n < 1000 { // perfectly even would be 2500; require >10%
			t.Fatalf("member %d owns only %d/10000 keys: %v", m, n, counts)
		}
	}
}

func TestRingAllowedSubset(t *testing.T) {
	r := newRing(4, 32)
	allowed := map[int]bool{1: true, 3: true}
	seen := make(map[int]int)
	for i := 0; i < 2000; i++ {
		m := r.owner("k"+strconv.Itoa(i), allowed)
		if m != 1 && m != 3 {
			t.Fatalf("owner %d outside allowed set", m)
		}
		seen[m]++
	}
	if seen[1] == 0 || seen[3] == 0 {
		t.Fatalf("subset not balanced: %v", seen)
	}
	if m := r.owner("k", map[int]bool{}); m != -1 {
		t.Fatalf("empty allowed set returned %d", m)
	}
}

func TestOIDTranslationRoundTrip(t *testing.T) {
	for _, m := range []int{0, 1, 7, 255} {
		local := model.MakeOID(42, 12345)
		g, err := globalOID(m, local)
		if err != nil {
			t.Fatal(err)
		}
		gm, back := splitOID(g)
		if gm != m || back != local {
			t.Fatalf("member %d: %s -> %s -> (%d, %s)", m, local, g, gm, back)
		}
		if m == 0 && g != local {
			t.Fatalf("member 0 must keep local OIDs verbatim: %s != %s", g, local)
		}
	}
	// Out-of-space local sequence is refused, not silently folded.
	big := model.MakeOID(1, 1<<33)
	if _, err := globalOID(1, big); err == nil {
		t.Fatal("oversized local seq accepted")
	}
}
