package shard

import (
	"errors"
	"sync"
	"testing"
	"time"

	"oodb"
	"oodb/internal/model"
	"oodb/internal/server"
	"oodb/internal/server/client"
)

// TestScatterPartialFailureTyped is the acceptance-criteria pin: a
// member down mid-scatter yields a typed *PartialError carrying the
// surviving rows and the dead member's identity — never a silently
// truncated plain result — and the scatter heals once the member is
// back.
func TestScatterPartialFailureTyped(t *testing.T) {
	r, srvs, dbs := startMembers(t, 2, defineParts)
	for i := 0; i < 40; i++ {
		if _, err := r.Insert("Part", partAttrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	full, err := r.Query(`SELECT name FROM Part`)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) != 40 {
		t.Fatalf("rows = %d", len(full.Rows))
	}

	// Kill member 1 and query again: the router must not pretend the
	// survivors' rows are the whole answer.
	addr1 := srvs[1].Addr().String()
	if err := srvs[1].Drain(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	_, err = r.Query(`SELECT name FROM Part`)
	if err == nil {
		t.Fatal("scatter with a dead member returned a plain result")
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T (%v), want *PartialError", err, err)
	}
	if len(pe.Failed) != 1 || pe.Failed[0].Member != 1 || pe.Failed[0].Addr != addr1 {
		t.Fatalf("failed = %+v", pe.Failed)
	}
	if pe.Result == nil || len(pe.Result.Rows) == 0 || len(pe.Result.Rows) >= 40 {
		t.Fatalf("partial rows = %v", pe.Result)
	}
	// Every surviving row is member 0's.
	for _, row := range pe.Result.Rows {
		if m, _ := splitOID(row.OID); m != 0 {
			t.Fatalf("row %s attributed to member %d", row.OID, m)
		}
	}
	// Aggregates honor the same contract.
	if _, err := r.Query(`SELECT COUNT(*) FROM Part`); !errors.As(err, &pe) {
		t.Fatalf("aggregate scatter error = %v", err)
	}

	// Restart the member on the same address over the same database: the
	// redialer heals and the scatter completes again.
	s2 := server.New(dbs[1], server.Options{Addr: addr1})
	startOnAddr(t, s2)
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := r.Query(`SELECT name FROM Part`)
		if err == nil {
			if len(res.Rows) != 40 {
				t.Fatalf("rows after recovery = %d", len(res.Rows))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scatter never recovered: %v", err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestScatterAllMembersDownTyped pins the no-survivors corner of the
// partial-failure contract: with every member down, a query whose ORDER
// BY key is not projected (the strip-key rewrite) must still surface a
// typed *PartialError over an empty merged result — not panic stripping
// a column from a result no member delivered.
func TestScatterAllMembersDownTyped(t *testing.T) {
	r, srvs, _ := startMembers(t, 2, defineParts)
	for i := 0; i < 10; i++ {
		if _, err := r.Insert("Part", partAttrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range srvs {
		if err := s.Drain(2 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	_, err := r.Query(`SELECT name FROM Part ORDER BY weight`)
	if err == nil {
		t.Fatal("scatter with every member dead returned a plain result")
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T (%v), want *PartialError", err, err)
	}
	if len(pe.Failed) != 2 {
		t.Fatalf("failed = %+v, want both members", pe.Failed)
	}
	if pe.Result == nil || len(pe.Result.Rows) != 0 {
		t.Fatalf("partial result = %+v, want empty", pe.Result)
	}
}

// startOnAddr starts a server, retrying briefly while the OS releases
// the previous listener's port.
func startOnAddr(t *testing.T, s *server.Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := s.Start()
		if err == nil {
			t.Cleanup(func() { _ = s.Drain(2 * time.Second) })
			return
		}
		if time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRoutedWriteFaultNoAckLost reuses the drain-under-load pattern at
// the shard layer: writers storm routed inserts while one member is
// drained mid-storm and its database closed and reopened (full restart,
// recovery replay included). Writes during the outage fail with typed
// member errors; every insert the router ACKED must be fetchable through
// the router afterwards — no acknowledged routed write is lost.
func TestRoutedWriteFaultNoAckLost(t *testing.T) {
	// Members built by hand (not startMembers) so the test knows each
	// database directory and can reopen member 1 after the crash.
	var srvs []*server.Server
	var dbs []*oodb.DB
	var dirs []string
	var addrs []string
	for i := 0; i < 2; i++ {
		dir := t.TempDir()
		db, err := oodb.Open(dir, oodb.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		defineParts(t, db)
		s := server.New(db, server.Options{})
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Drain(2 * time.Second) })
		srvs = append(srvs, s)
		dbs = append(dbs, db)
		dirs = append(dirs, dir)
		addrs = append(addrs, s.Addr().String())
	}
	r, err := New(addrs, Options{Client: client.Options{Role: "app", RequestTimeout: 5 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })

	const writers = 4
	var mu sync.Mutex
	var acked []model.OID
	var typedFailures int
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				g, err := r.Insert("Part", partAttrs(w*1000+i))
				mu.Lock()
				if err == nil {
					acked = append(acked, g)
				} else {
					var me MemberError
					if errors.As(err, &me) {
						typedFailures++
					} else {
						mu.Unlock()
						t.Errorf("untyped insert failure: %v", err)
						return
					}
				}
				mu.Unlock()
			}
		}(w)
	}

	// Let the storm run, then kill member 1 mid-storm: drain (commits in
	// flight finish — that is the ack contract), close the DB, reopen it
	// through recovery, restart the server on the same address.
	time.Sleep(150 * time.Millisecond)
	addr1 := srvs[1].Addr().String()
	if err := srvs[1].Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := dbs[1].Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // storm against the dead member
	db1, err := oodb.Open(dirs[1], oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db1.Close() })
	s1 := server.New(db1, server.Options{Addr: addr1})
	startOnAddr(t, s1)

	// Writers must recover (redial + retry) before the storm ends.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := r.members[1].rd.Do(func(c *client.Client) error { return c.Ping() }); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("member 1 never came back")
		}
		time.Sleep(25 * time.Millisecond)
	}
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(acked) == 0 {
		t.Fatal("no inserts acked")
	}
	// The outage must actually have been observed by some writer, or the
	// fault injection proved nothing.
	if typedFailures == 0 {
		t.Fatal("no writer hit the dead member; fault not exercised")
	}
	post := 0
	for _, g := range acked {
		if m, _ := splitOID(g); m == 1 {
			post++
		}
		if _, err := r.Fetch(g); err != nil {
			t.Fatalf("acked insert %s lost: %v", g, err)
		}
	}
	if post == 0 {
		t.Fatal("no acked insert landed on the restarted member")
	}
	t.Logf("acked=%d typed_failures=%d on_restarted_member=%d", len(acked), typedFailures, post)
}
