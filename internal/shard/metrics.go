package shard

import "oodb/internal/obs"

// Shard metrics, layer "shard". The health gauge is what the prober
// writes and what .shard status reads, so the operator always sees the
// exact state the router acts on.
var (
	// Membership and health.
	mMembersHealthy = obs.RegisterGauge("shard_members_healthy")
	mProbeFailures  = obs.RegisterCounter("shard_probe_failures_total")

	// Scatter-gather queries.
	mScatterQueries = obs.RegisterCounter("shard_scatter_queries_total")
	mScatterPartial = obs.RegisterCounter("shard_scatter_partial_total")
	mScatterLatency = obs.RegisterHistogram("shard_scatter_latency_ns")

	// Routed single-object operations.
	mRoutedOps    = obs.RegisterCounter("shard_routed_ops_total")
	mRoutedErrors = obs.RegisterCounter("shard_routed_errors_total")

	// Retries driven by client.Retryable classification.
	mRetries = obs.RegisterCounter("shard_retries_total")
)
