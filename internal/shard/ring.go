package shard

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent hash ring over member indexes. Each member owns
// vnodes points on a 64-bit circle; a key belongs to the first point at
// or clockwise of its hash. Virtual nodes smooth the load split, and the
// allowed-set restriction lets one ring serve per-class placement maps
// (walk clockwise until a point's member is in the class's subset).
//
// The ring only places NEW objects; an object's global OID records the
// member it landed on (see the package comment), so ring changes never
// need data movement for existing objects to stay reachable.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member int
}

// newRing builds a ring over members 0..n-1 with the given virtual node
// count per member (minimum 1).
func newRing(n, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &ring{points: make([]ringPoint, 0, n*vnodes)}
	for m := 0; m < n; m++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hashKey("member-" + strconv.Itoa(m) + "/" + strconv.Itoa(v)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].member < r.points[b].member
	})
	return r
}

// hashKey is FNV-1a over the key bytes, pushed through a 64-bit
// avalanche finalizer. Raw FNV-1a output clusters for short keys that
// differ only in a trailing counter ("member-2/0".."member-2/63"), which
// would collapse the vnode points into one arc per member; the
// finalizer (the murmur3 fmix64 constants) scatters those clusters
// uniformly over the circle.
func hashKey(key string) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(key))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// owner returns the member owning key, restricted to the allowed set
// (nil allows every member). It returns -1 if no allowed member exists.
func (r *ring) owner(key string, allowed map[int]bool) int {
	if len(r.points) == 0 {
		return -1
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if allowed == nil || allowed[p.member] {
			return p.member
		}
	}
	return -1
}
