// Package shard turns N kimsrv processes into one logical database —
// the scale-out step past PR 9's single served process, and the
// distribution reading of Kim §5.2: once every member database sits
// under one common data model, *where* an object lives can become an
// implementation detail.
//
// Three pieces:
//
//   - RemoteSource adapts one remote kimsrv into a federation.Source, so
//     a served database joins a federation exactly like an in-process
//     member. It also implements federation.QueryableSource: eligible
//     queries ship to the member as one wire query (predicate pushdown)
//     instead of a per-entity Scan.
//   - Router partitions classes across members. A per-class placement
//     map (the members whose schema carries the class) plus a consistent
//     hash ring decide where each new object lands; the member index is
//     recorded in the object's global OID, so every later read or write
//     routes O(1) to the owner without consulting the ring. Queries fan
//     out scatter-gather with bounded parallelism and merge
//     deterministically; single-object Fetch/Get/Insert/Update/Delete
//     route to the owning member.
//   - An operational rim: per-member health probes over Redialer-backed
//     connections, retry with capped exponential backoff driven by
//     client.Retryable, typed partial-failure results (a scatter with a
//     dead member NEVER silently returns the surviving subset as if it
//     were complete), and shard_* metrics through internal/obs.
//
// What is deliberately not distributed: transactions are single-member
// (the router's writes autocommit on the owner; there is no cross-member
// two-phase commit), and cross-member joins/path traversals are out of
// scope — a reference held by an object on member A to an object on
// member B is refused at write time (ErrCrossMember) rather than
// half-supported at read time.
//
// # Global object identity
//
// Each member allocates OIDs independently, so two members' local OIDs
// collide. The router maps between the two spaces mechanically: a global
// OID carries the owning member's index in the top 8 bits of the 40-bit
// sequence field, leaving 32 bits of per-member sequence space. Member
// 0's global OIDs equal its local OIDs. The class bits are always the
// owner's local class id and are only ever interpreted by the owner.
// Because identity records placement, membership changes never strand an
// object: the ring only assigns NEW objects; the OID remembers.
package shard

import (
	"errors"
	"fmt"
	"strings"

	"oodb/internal/model"
)

// Typed errors of the shard layer.
var (
	// ErrNoMember reports an OID whose member index is outside the
	// router's member list, or a class no member carries.
	ErrNoMember = errors.New("shard: no such member")
	// ErrCrossMember reports a reference from an object on one member to
	// an object on another. Cross-member references are out of scope
	// (see the package comment) and refused at write time.
	ErrCrossMember = errors.New("shard: cross-member reference")
	// ErrOIDSpace reports a member whose local sequence numbers have
	// outgrown the 32-bit per-member slice of the global OID space.
	ErrOIDSpace = errors.New("shard: member OID outside the routable 32-bit space")
	// ErrUnsupported reports a query shape the router cannot scatter
	// (ORDER BY without an explicit projection).
	ErrUnsupported = errors.New("shard: unsupported query shape")
	// ErrClosed reports use of a closed router.
	ErrClosed = errors.New("shard: router closed")
)

// memberBits is the width of the member index inside a global OID's
// sequence field; localSeqBits is what remains for the member's own
// sequence numbers.
const (
	memberBits   = 8
	localSeqBits = 32
	maxLocalSeq  = 1<<localSeqBits - 1
	// MaxMembers is the largest member count the OID scheme can route.
	MaxMembers = 1 << memberBits
)

// globalOID tags a member's local OID with its member index. It fails
// with ErrOIDSpace if the local sequence has outgrown the per-member
// slice (after ~4 billion objects of one class on one member).
func globalOID(member int, local model.OID) (model.OID, error) {
	if local.IsNil() {
		return model.NilOID, nil
	}
	seq := local.Seq()
	if seq > maxLocalSeq {
		return model.NilOID, fmt.Errorf("%w: %s on member %d", ErrOIDSpace, local, member)
	}
	return model.MakeOID(local.Class(), uint64(member)<<localSeqBits|seq), nil
}

// splitOID recovers the member index and local OID from a global OID.
func splitOID(g model.OID) (member int, local model.OID) {
	if g.IsNil() {
		return 0, model.NilOID
	}
	seq := g.Seq()
	return int(seq >> localSeqBits), model.MakeOID(g.Class(), seq&maxLocalSeq)
}

// toGlobal rewrites every reference inside v (recursively through sets)
// from member m's local OID space into the global space.
func toGlobal(member int, v model.Value) (model.Value, error) {
	switch v.Kind() {
	case model.KindRef:
		local, _ := v.AsRef()
		g, err := globalOID(member, local)
		if err != nil {
			return model.Null, err
		}
		return model.Ref(g), nil
	case model.KindSet:
		members, _ := v.AsSet()
		out := make([]model.Value, 0, len(members))
		for _, m := range members {
			gv, err := toGlobal(member, m)
			if err != nil {
				return model.Null, err
			}
			out = append(out, gv)
		}
		return model.Set(out...), nil
	default:
		return v, nil
	}
}

// toLocal rewrites every reference inside v from the global space into
// member m's local space. A reference owned by a different member is
// refused with ErrCrossMember.
func toLocal(member int, v model.Value) (model.Value, error) {
	switch v.Kind() {
	case model.KindRef:
		g, _ := v.AsRef()
		owner, local := splitOID(g)
		if owner != member {
			return model.Null, fmt.Errorf("%w: %s is on member %d, not %d", ErrCrossMember, g, owner, member)
		}
		return model.Ref(local), nil
	case model.KindSet:
		members, _ := v.AsSet()
		out := make([]model.Value, 0, len(members))
		for _, m := range members {
			lv, err := toLocal(member, m)
			if err != nil {
				return model.Null, err
			}
			out = append(out, lv)
		}
		return model.Set(out...), nil
	default:
		return v, nil
	}
}

// MemberError is one member's failure inside a scatter.
type MemberError struct {
	Member int
	Addr   string
	Err    error
}

func (e MemberError) Error() string {
	return fmt.Sprintf("member %d (%s): %v", e.Member, e.Addr, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e MemberError) Unwrap() error { return e.Err }

// PartialError reports a scatter in which one or more members failed.
// Result holds the merged rows from the members that answered — callers
// that can tolerate partial answers may use it, but only by explicitly
// unwrapping this error; the router never returns a subset as a plain
// result.
type PartialError struct {
	Result *Result
	Failed []MemberError
}

func (e *PartialError) Error() string {
	parts := make([]string, len(e.Failed))
	for i, f := range e.Failed {
		parts[i] = f.Error()
	}
	rows := 0
	if e.Result != nil {
		rows = len(e.Result.Rows)
	}
	return fmt.Sprintf("shard: partial result (%d rows from surviving members): %s",
		rows, strings.Join(parts, "; "))
}

// Unwrap exposes the member failures to errors.Is/As.
func (e *PartialError) Unwrap() []error {
	out := make([]error, len(e.Failed))
	for i := range e.Failed {
		out[i] = e.Failed[i]
	}
	return out
}

// Result is a merged scatter-gather query result. Row OIDs and reference
// values are in the global OID space.
type Result struct {
	Cols []string
	Rows []Row
}

// Row is one merged result row.
type Row struct {
	OID    model.OID
	Values []model.Value
}
