package shard

import (
	"errors"

	"oodb/internal/federation"
	"oodb/internal/model"
	"oodb/internal/query"
	"oodb/internal/server/client"
)

// RemoteSource adapts one remote kimsrv into a federation member: the
// served database joins a federation exactly like an in-process DB. It
// speaks the kimw wire protocol through a Redialer, so a member that
// restarts (or a connection that latches closed) heals transparently.
//
// Two evaluation paths, mirroring OOSource:
//
//   - RunQuery (federation.QueryableSource) ships the whole parsed query
//     to the member as one wire query — predicate pushdown. The WHERE
//     clause, ORDER BY and LIMIT execute next to the data under the
//     member's planner and indexes; one round-trip returns only the
//     matching projected rows.
//   - Scan (federation.Source) is the lenient fallback: it enumerates
//     the class over the wire and fetches each instance, presenting
//     entities whose nested paths dereference lazily with further
//     fetches. Slow, but semantically the common-model evaluator.
//
// OIDs and reference values surface in the member's local OID space: a
// RemoteSource is one member seen alone. The Router, not the source,
// owns the global OID space.
type RemoteSource struct {
	rd *client.Redialer
}

// NewRemoteSource returns a federation member backed by the kimsrv at
// addr. No connection is made until the first use.
func NewRemoteSource(addr string, opts client.Options) *RemoteSource {
	return &RemoteSource{rd: client.NewRedialer(addr, opts, client.RedialOptions{})}
}

// newRemoteSourceOn shares an existing Redialer (the Router reuses its
// members' connections).
func newRemoteSourceOn(rd *client.Redialer) *RemoteSource {
	return &RemoteSource{rd: rd}
}

// Close closes the underlying connection.
func (s *RemoteSource) Close() error { return s.rd.Close() }

// Addr returns the member's dial address.
func (s *RemoteSource) Addr() string { return s.rd.Addr() }

// Ping checks liveness end-to-end through the member's session worker.
func (s *RemoteSource) Ping() error {
	return s.rd.DoIdempotent(func(c *client.Client) error { return c.Ping() })
}

// Classes implements federation.Source over the wire.
func (s *RemoteSource) Classes() []string {
	var names []string
	err := s.rd.DoIdempotent(func(c *client.Client) error {
		var err error
		names, err = c.Classes()
		return err
	})
	if err != nil {
		return nil
	}
	return names
}

// Scan implements federation.Source: enumerate the class with a wire
// query (hierarchy-scoped, like OOSource.Scan), then fetch each
// instance. fn receives entities that resolve nested paths with further
// wire fetches.
func (s *RemoteSource) Scan(class string, fn func(federation.Entity) bool) error {
	var res *client.Result
	err := s.rd.DoIdempotent(func(c *client.Client) error {
		var err error
		res, err = c.Query("SELECT * FROM " + class)
		return err
	})
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		ent := &remoteEntity{src: s, oid: row.OID}
		if !fn(ent) {
			return nil
		}
	}
	return nil
}

// RunQuery implements federation.QueryableSource: ship the query over
// the wire. Engine-side rejections (unknown attribute, bad request)
// decline the pushdown so the federation falls back to the lenient Scan
// path — the same contract OOSource keeps. Connection-level and
// availability errors are real errors: the fallback path would fail the
// same way, so failing fast is honest.
func (s *RemoteSource) RunQuery(q *query.Query) (*federation.Result, bool, error) {
	if len(q.Select) == 0 || len(q.Aggregates) > 0 || q.Only {
		return nil, false, nil
	}
	var wire *client.Result
	err := s.rd.DoIdempotent(func(c *client.Client) error {
		var err error
		wire, err = c.Query(q.String())
		return err
	})
	if err != nil {
		if errors.Is(err, client.ErrNotFound) || errors.Is(err, client.ErrBadRequest) ||
			errors.Is(err, client.ErrServer) {
			return nil, false, nil
		}
		return nil, false, err
	}
	res := &federation.Result{Cols: wire.Cols, Rows: make([]federation.Row, 0, len(wire.Rows))}
	for _, row := range wire.Rows {
		res.Rows = append(res.Rows, federation.Row{
			Entity: &remoteEntity{src: s, oid: row.OID},
			Values: row.Values,
		})
	}
	return res, true, nil
}

// remoteEntity is one remote object viewed through the common model. The
// object body is fetched lazily on the first Get and cached; nested path
// steps dereference with further fetches.
type remoteEntity struct {
	src *RemoteSource
	oid model.OID
	obj *client.Object
}

func (e *remoteEntity) fetchInto() bool {
	if e.obj != nil {
		return true
	}
	var obj *client.Object
	err := e.src.rd.DoIdempotent(func(c *client.Client) error {
		var err error
		obj, err = c.Fetch(e.oid)
		return err
	})
	if err != nil {
		return false
	}
	e.obj = obj
	return true
}

// Get resolves an attribute path, mirroring ooEntity: an unknown
// attribute is (Null, false); a null mid-path is (Null, true).
func (e *remoteEntity) Get(path []string) (model.Value, bool) {
	if !e.fetchInto() {
		return model.Null, false
	}
	obj := e.obj
	for i, step := range path {
		v, ok := obj.Attrs[step]
		if !ok {
			return model.Null, false
		}
		if i == len(path)-1 {
			return v, true
		}
		oid, ok := v.AsRef()
		if !ok {
			return model.Null, true // null mid-path: value is null
		}
		next := &remoteEntity{src: e.src, oid: oid}
		if !next.fetchInto() {
			return model.Null, true
		}
		obj = next.obj
	}
	return model.Null, false
}
