package shard

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"oodb"
	"oodb/internal/model"
	"oodb/internal/server"
	"oodb/internal/server/client"
)

// defineParts installs the shared test schema on one member.
func defineParts(t *testing.T, db *oodb.DB) {
	t.Helper()
	if _, err := db.DefineClass("Part", nil,
		oodb.Attr{Name: "name", Domain: "String"},
		oodb.Attr{Name: "weight", Domain: "Integer"},
		oodb.Attr{Name: "tag", Domain: "String"},
		oodb.Attr{Name: "mate", Domain: "Part"},
	); err != nil {
		t.Fatal(err)
	}
}

// startMembers spins n loopback kimsrv members with identical schemas
// and a router over them.
func startMembers(t *testing.T, n int, define func(*testing.T, *oodb.DB)) (*Router, []*server.Server, []*oodb.DB) {
	t.Helper()
	var srvs []*server.Server
	var dbs []*oodb.DB
	var addrs []string
	for i := 0; i < n; i++ {
		db, err := oodb.Open(t.TempDir(), oodb.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		define(t, db)
		s := server.New(db, server.Options{})
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Drain(2 * time.Second) })
		srvs = append(srvs, s)
		dbs = append(dbs, db)
		addrs = append(addrs, s.Addr().String())
	}
	r, err := New(addrs, Options{Client: client.Options{Role: "app", RequestTimeout: 5 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r, srvs, dbs
}

// insertSingle autocommits one insert into an embedded database.
func insertSingle(t *testing.T, db *oodb.DB, class string, attrs map[string]model.Value) model.OID {
	t.Helper()
	var oid model.OID
	err := db.Do(func(tx *oodb.Tx) error {
		var err error
		oid, err = tx.Insert(class, attrs)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return oid
}

// partAttrs builds the i-th deterministic Part.
func partAttrs(i int) map[string]model.Value {
	return map[string]model.Value{
		"name":   model.String(fmt.Sprintf("p%03d", i)),
		"weight": model.Int(int64(i * 7 % 100)),
		"tag":    model.String([]string{"x", "y", "z"}[i%3]),
	}
}

// encodeSortedRows fingerprints a result's values order-insensitively:
// each row's values are encoded canonically, rows are sorted, and the
// concatenation compared. OIDs differ between setups, so values only.
func encodeSortedRows(rows [][]model.Value) []byte {
	enc := make([][]byte, 0, len(rows))
	for _, vals := range rows {
		var b []byte
		for _, v := range vals {
			b = model.AppendValue(b, v)
		}
		enc = append(enc, b)
	}
	sort.Slice(enc, func(a, b int) bool { return bytes.Compare(enc[a], enc[b]) < 0 })
	return bytes.Join(enc, []byte{'\n'})
}

func shardRowValues(res *Result) [][]model.Value {
	out := make([][]model.Value, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.Values
	}
	return out
}

// TestScatterParitySingleDB pins the core distribution contract: the
// same dataset, partitioned over 4 members vs loaded into one database,
// answers every query shape identically (values, not OIDs).
func TestScatterParitySingleDB(t *testing.T) {
	const n = 120
	r, _, _ := startMembers(t, 4, defineParts)

	single, err := oodb.Open(t.TempDir(), oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	defineParts(t, single)

	owners := make(map[int]int) // member -> objects placed
	for i := 0; i < n; i++ {
		attrs := partAttrs(i)
		g, err := r.Insert("Part", attrs)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := splitOID(g)
		owners[m]++
		insertSingle(t, single, "Part", attrs)
	}
	// The ring must actually partition: every member holds a share.
	if len(owners) != 4 {
		t.Fatalf("placement not partitioned: %v", owners)
	}

	ordered := []string{
		`SELECT name, weight FROM Part WHERE weight > 50 ORDER BY name`,
		`SELECT name FROM Part WHERE weight >= 30 AND tag = 'x' ORDER BY name DESC`,
		`SELECT name, tag FROM Part ORDER BY name LIMIT 17`,
		`SELECT name FROM Part WHERE tag = 'y' ORDER BY name LIMIT 5`,
	}
	for _, qsrc := range ordered {
		sres, err := r.Query(qsrc)
		if err != nil {
			t.Fatalf("shard %q: %v", qsrc, err)
		}
		bres, err := single.Query(qsrc)
		if err != nil {
			t.Fatalf("single %q: %v", qsrc, err)
		}
		if len(sres.Rows) == 0 {
			t.Fatalf("%q: empty result proves nothing", qsrc)
		}
		// Ordered queries must match row-for-row, not just as a set.
		if len(sres.Rows) != len(bres.Rows) {
			t.Fatalf("%q: %d vs %d rows", qsrc, len(sres.Rows), len(bres.Rows))
		}
		for i := range sres.Rows {
			for j := range sres.Rows[i].Values {
				if model.Compare(sres.Rows[i].Values[j], bres.Rows[i].Values[j]) != 0 {
					t.Fatalf("%q row %d col %d: %v vs %v", qsrc, i, j,
						sres.Rows[i].Values[j], bres.Rows[i].Values[j])
				}
			}
		}
	}

	unordered := []string{
		`SELECT name, weight, tag FROM Part WHERE tag = 'z'`,
		`SELECT name FROM Part WHERE weight < 20 OR weight > 80`,
	}
	for _, qsrc := range unordered {
		sres, err := r.Query(qsrc)
		if err != nil {
			t.Fatalf("shard %q: %v", qsrc, err)
		}
		bres, err := single.Query(qsrc)
		if err != nil {
			t.Fatalf("single %q: %v", qsrc, err)
		}
		bvals := make([][]model.Value, len(bres.Rows))
		for i, row := range bres.Rows {
			bvals[i] = row.Values
		}
		if !bytes.Equal(encodeSortedRows(shardRowValues(sres)), encodeSortedRows(bvals)) {
			t.Fatalf("%q: sharded result set differs from single DB", qsrc)
		}
		if len(sres.Rows) == 0 {
			t.Fatalf("%q: empty result proves nothing", qsrc)
		}
	}

	// Aggregates combine across members: COUNT/SUM add, MIN/MAX compare,
	// AVG recomputed from shipped SUM+COUNT.
	aggs := []string{
		`SELECT COUNT(*), SUM(weight), MIN(weight), MAX(weight), AVG(weight) FROM Part`,
		`SELECT COUNT(weight), AVG(weight) FROM Part WHERE tag = 'x'`,
	}
	for _, qsrc := range aggs {
		sres, err := r.Query(qsrc)
		if err != nil {
			t.Fatalf("shard %q: %v", qsrc, err)
		}
		bres, err := single.Query(qsrc)
		if err != nil {
			t.Fatalf("single %q: %v", qsrc, err)
		}
		if len(sres.Rows) != 1 || len(bres.Rows) != 1 {
			t.Fatalf("%q: aggregate row counts %d vs %d", qsrc, len(sres.Rows), len(bres.Rows))
		}
		for j := range sres.Cols {
			if sres.Cols[j] != bres.Cols[j] {
				t.Fatalf("%q: col %q vs %q", qsrc, sres.Cols[j], bres.Cols[j])
			}
			if model.Compare(sres.Rows[0].Values[j], bres.Rows[0].Values[j]) != 0 {
				t.Fatalf("%q col %s: %v vs %v", qsrc, sres.Cols[j],
					sres.Rows[0].Values[j], bres.Rows[0].Values[j])
			}
		}
	}

	// SELECT * scatters too: row count parity (identities differ by
	// construction, so values cannot be compared).
	sres, err := r.Query(`SELECT * FROM Part`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Rows) != n {
		t.Fatalf("SELECT *: %d rows, want %d", len(sres.Rows), n)
	}
	// ORDER BY without a projection cannot be merged; typed refusal.
	if _, err := r.Query(`SELECT * FROM Part ORDER BY name`); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("SELECT * ORDER BY: %v", err)
	}
}

// TestRoutedObjectOps pins owner routing and global<->local OID
// translation for the single-object surface.
func TestRoutedObjectOps(t *testing.T) {
	r, _, _ := startMembers(t, 3, defineParts)

	var oids []model.OID
	for i := 0; i < 30; i++ {
		g, err := r.Insert("Part", partAttrs(i))
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, g)
	}

	// Fetch through the router round-trips every object by global OID.
	for i, g := range oids {
		obj, err := r.Fetch(g)
		if err != nil {
			t.Fatalf("fetch %s: %v", g, err)
		}
		want, _ := partAttrs(i)["name"].AsString()
		if got, _ := obj.Attrs["name"].AsString(); got != want {
			t.Fatalf("fetch %s: name %q, want %q", g, got, want)
		}
		if obj.OID != g {
			t.Fatalf("fetch returned OID %s, want global %s", obj.OID, g)
		}
	}

	// Update + Get route to the owner; ref values translate both ways.
	sameOwner := func(a, b model.OID) bool {
		ma, _ := splitOID(a)
		mb, _ := splitOID(b)
		return ma == mb
	}
	var a, b, c model.OID // a, b co-located; c elsewhere
	for _, g := range oids[1:] {
		if sameOwner(oids[0], g) && a.IsNil() {
			a, b = oids[0], g
		} else if !sameOwner(oids[0], g) && c.IsNil() {
			c = g
		}
	}
	if a.IsNil() || c.IsNil() {
		t.Fatal("dataset did not spread over members")
	}
	if err := r.Update(a, map[string]model.Value{"mate": model.Ref(b)}); err != nil {
		t.Fatal(err)
	}
	v, err := r.Get(a, "mate")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := v.AsRef(); got != b {
		t.Fatalf("mate = %s, want global %s", got, b)
	}
	// The fetched object's ref surfaces global too.
	obj, err := r.Fetch(a)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := obj.Attrs["mate"].AsRef(); got != b {
		t.Fatalf("fetched mate = %s, want %s", got, b)
	}

	// A cross-member reference is refused at write time, not mangled.
	if err := r.Update(a, map[string]model.Value{"mate": model.Ref(c)}); !errors.Is(err, ErrCrossMember) {
		t.Fatalf("cross-member ref: %v", err)
	}

	// Delete routes to the owner; the object is gone through the router.
	if err := r.Delete(oids[5]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Fetch(oids[5]); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("fetch after delete: %v", err)
	}
}

// TestInsertRefPlacement pins reference-driven placement: an insert
// whose attributes reference existing objects lands on the referents'
// member deterministically (references never cross members, so the ring
// must not gamble on landing there ~1/N of the time), and an insert
// whose referents span two members is refused with ErrCrossMember.
func TestInsertRefPlacement(t *testing.T) {
	r, _, _ := startMembers(t, 3, func(t *testing.T, db *oodb.DB) {
		defineParts(t, db)
		if _, err := db.DefineClass("Link", nil,
			oodb.Attr{Name: "a", Domain: "Part"},
			oodb.Attr{Name: "b", Domain: "Part"},
		); err != nil {
			t.Fatal(err)
		}
	})

	var oids []model.OID
	owners := map[int]model.OID{}
	for i := 0; i < 24; i++ {
		g, err := r.Insert("Part", partAttrs(i))
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, g)
		m, _ := splitOID(g)
		owners[m] = g
	}
	if len(owners) < 2 {
		t.Fatalf("dataset did not spread over members: %v", owners)
	}

	// Every referencing insert must land with its referent, whichever
	// member that is.
	for i, g := range oids {
		attrs := partAttrs(100 + i)
		attrs["mate"] = model.Ref(g)
		ng, err := r.Insert("Part", attrs)
		if err != nil {
			t.Fatalf("insert referencing %s: %v", g, err)
		}
		gm, _ := splitOID(g)
		nm, _ := splitOID(ng)
		if nm != gm {
			t.Fatalf("insert referencing member %d landed on member %d", gm, nm)
		}
		v, err := r.Get(ng, "mate")
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := v.AsRef(); got != g {
			t.Fatalf("mate = %s, want %s", got, g)
		}
	}

	// Two referents on one member co-place; on two members it is a typed
	// refusal, not a ~1/N gamble.
	var m0, m1 model.OID
	for _, g := range owners {
		if m0.IsNil() {
			m0 = g
		} else if m1.IsNil() {
			m1 = g
		}
	}
	if _, err := r.Insert("Link", map[string]model.Value{
		"a": model.Ref(m0), "b": model.Ref(m0),
	}); err != nil {
		t.Fatalf("co-located refs: %v", err)
	}
	if _, err := r.Insert("Link", map[string]model.Value{
		"a": model.Ref(m0), "b": model.Ref(m1),
	}); !errors.Is(err, ErrCrossMember) {
		t.Fatalf("cross-member refs: %v, want ErrCrossMember", err)
	}
}

// TestPlacementSubset pins the per-class placement map: a class defined
// on a subset of members only ever lands (and scatters) there.
func TestPlacementSubset(t *testing.T) {
	i := 0
	r, _, _ := startMembers(t, 3, func(t *testing.T, db *oodb.DB) {
		defineParts(t, db)
		if i < 2 { // "Gadget" exists only on members 0 and 1
			if _, err := db.DefineClass("Gadget", nil,
				oodb.Attr{Name: "n", Domain: "Integer"}); err != nil {
				t.Fatal(err)
			}
		}
		i++
	})

	pm, err := r.Placement()
	if err != nil {
		t.Fatal(err)
	}
	if got := pm["Gadget"]; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Gadget placement = %v", got)
	}
	if got := pm["Part"]; len(got) != 3 {
		t.Fatalf("Part placement = %v", got)
	}

	seen := map[int]bool{}
	for k := 0; k < 40; k++ {
		g, err := r.Insert("Gadget", map[string]model.Value{"n": model.Int(int64(k))})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := splitOID(g)
		if m > 1 {
			t.Fatalf("Gadget landed on member %d outside its placement", m)
		}
		seen[m] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("Gadget not spread over its placement: %v", seen)
	}

	res, err := r.Query(`SELECT n FROM Gadget`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 40 {
		t.Fatalf("Gadget rows = %d", len(res.Rows))
	}

	if _, err := r.Query(`SELECT x FROM Nowhere`); !errors.Is(err, ErrNoMember) {
		t.Fatalf("unknown class: %v", err)
	}
}

// TestRouterHealthProbe pins the operational rim: probes see members
// come and go.
func TestRouterHealthProbe(t *testing.T) {
	r, srvs, _ := startMembers(t, 2, defineParts)
	st := r.Probe()
	if !st[0].Healthy || !st[1].Healthy {
		t.Fatalf("status = %+v", st)
	}
	if err := srvs[1].Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	st = r.Probe()
	if !st[0].Healthy || st[1].Healthy {
		t.Fatalf("status after drain = %+v", st)
	}
}
