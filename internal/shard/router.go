package shard

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"oodb/internal/model"
	"oodb/internal/query"
	"oodb/internal/server/client"
)

// Options configures a Router. The zero value is usable.
type Options struct {
	// Client configures every member connection (role, token, timeouts).
	Client client.Options
	// Vnodes is the virtual node count per member on the hash ring
	// (default 64).
	Vnodes int
	// Fanout bounds concurrent member requests per scatter (default 4).
	Fanout int
	// Retries is how many times a retryable member error (admission shed,
	// session limit — client.Retryable) is retried with exponential
	// backoff before it counts as the member's failure. Zero means the
	// default of 3; a negative value disables retries entirely.
	Retries int
	// RetryBase is the first retry delay (default 25ms); RetryCap bounds
	// the exponential growth (default 1s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// ProbeInterval is the health-probe period (default 2s).
	ProbeInterval time.Duration
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Vnodes <= 0 {
		out.Vnodes = 64
	}
	if out.Fanout <= 0 {
		out.Fanout = 4
	}
	if out.Retries < 0 {
		out.Retries = 0
	} else if out.Retries == 0 {
		out.Retries = 3
	}
	if out.RetryBase <= 0 {
		out.RetryBase = 25 * time.Millisecond
	}
	if out.RetryCap < out.RetryBase {
		out.RetryCap = time.Second
		if out.RetryCap < out.RetryBase {
			out.RetryCap = out.RetryBase
		}
	}
	if out.ProbeInterval <= 0 {
		out.ProbeInterval = 2 * time.Second
	}
	return out
}

// member is one kimsrv process in the shard set.
type member struct {
	idx     int
	addr    string
	rd      *client.Redialer
	healthy atomic.Bool
}

// Router presents N kimsrv members as one logical database: scatter-
// gather queries, owner-routed single-object operations, health probes.
// Safe for concurrent use.
type Router struct {
	opts    Options
	members []*member
	ring    *ring

	mu        sync.Mutex
	placement map[string]map[int]bool // class -> members whose schema carries it

	insertSeq atomic.Uint64
	closed    atomic.Bool
	probeStop chan struct{}
	probeWg   sync.WaitGroup
}

// New returns a router over the given member addresses. Member indexes —
// and therefore the OID space — follow the order of addrs, so a shard
// set must keep its address list stable (append-only) across restarts.
// No connection is made until the first operation or Start.
func New(addrs []string, opts Options) (*Router, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: empty member list", ErrNoMember)
	}
	if len(addrs) > MaxMembers {
		return nil, fmt.Errorf("%w: %d members exceed the %d the OID scheme can route",
			ErrOIDSpace, len(addrs), MaxMembers)
	}
	o := opts.withDefaults()
	r := &Router{
		opts:      o,
		ring:      newRing(len(addrs), o.Vnodes),
		placement: make(map[string]map[int]bool),
		probeStop: make(chan struct{}),
	}
	for i, addr := range addrs {
		r.members = append(r.members, &member{
			idx:  i,
			addr: addr,
			rd:   client.NewRedialer(addr, o.Client, client.RedialOptions{}),
		})
	}
	return r, nil
}

// Start launches the health prober (one immediate probe, then every
// ProbeInterval). Optional: the router works without it, but Status and
// the shard_members_healthy gauge stay cold.
func (r *Router) Start() {
	r.probe()
	r.probeWg.Add(1)
	go func() {
		defer r.probeWg.Done()
		t := time.NewTicker(r.opts.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-r.probeStop:
				return
			case <-t.C:
				r.probe()
			}
		}
	}()
}

// probe pings every member once and publishes the health gauge.
func (r *Router) probe() {
	healthy := int64(0)
	for _, m := range r.members {
		err := m.rd.DoIdempotent(func(c *client.Client) error { return c.Ping() })
		if err != nil {
			mProbeFailures.Add(1)
			m.healthy.Store(false)
			continue
		}
		m.healthy.Store(true)
		healthy++
	}
	mMembersHealthy.Set(healthy)
}

// Close stops the prober and closes every member connection.
func (r *Router) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	close(r.probeStop)
	r.probeWg.Wait()
	for _, m := range r.members {
		_ = m.rd.Close()
	}
	return nil
}

// MemberStatus is one member's view in Status.
type MemberStatus struct {
	Member  int
	Addr    string
	Healthy bool
}

// Status reports each member's last probe outcome (call Start, or Probe
// once, for fresh data).
func (r *Router) Status() []MemberStatus {
	out := make([]MemberStatus, len(r.members))
	for i, m := range r.members {
		out[i] = MemberStatus{Member: m.idx, Addr: m.addr, Healthy: m.healthy.Load()}
	}
	return out
}

// Probe runs one synchronous health sweep (for callers not using Start).
func (r *Router) Probe() []MemberStatus {
	r.probe()
	return r.Status()
}

// Addrs returns the member addresses in index order.
func (r *Router) Addrs() []string {
	out := make([]string, len(r.members))
	for i, m := range r.members {
		out[i] = m.addr
	}
	return out
}

// call runs one operation against a member, retrying retryable failures
// (admission-control sheds, session limits) with capped exponential
// backoff. idempotent selects the redial heal mode: idempotent
// operations (reads, converging writes) also retry connection errors
// raised mid-round-trip, while non-idempotent ones (Insert, Delete)
// only retry requests that provably never reached the wire — a lost
// response must surface as the member's failure, never re-send and
// possibly double-execute (see client.Redialer.Do vs DoIdempotent).
func (r *Router) call(m *member, idempotent bool, fn func(*client.Client) error) error {
	do := m.rd.Do
	if idempotent {
		do = m.rd.DoIdempotent
	}
	backoff := r.opts.RetryBase
	for attempt := 0; ; attempt++ {
		err := do(fn)
		if err == nil || !client.Retryable(err) || attempt >= r.opts.Retries {
			return err
		}
		mRetries.Add(1)
		time.Sleep(backoff)
		backoff *= 2
		if backoff > r.opts.RetryCap {
			backoff = r.opts.RetryCap
		}
	}
}

// --- Placement ----------------------------------------------------------

// Refresh rebuilds the per-class placement map by asking every member
// for its class list. It fails — leaving the previous map in place — if
// any member cannot answer: building a partial map would silently
// shrink scatters, which is exactly what the partial-failure contract
// forbids.
func (r *Router) Refresh() error {
	classes := make(map[string]map[int]bool)
	for _, m := range r.members {
		var names []string
		err := r.call(m, true, func(c *client.Client) error {
			var err error
			names, err = c.Classes()
			return err
		})
		if err != nil {
			return fmt.Errorf("shard: refresh: member %d (%s): %w", m.idx, m.addr, err)
		}
		for _, name := range names {
			set := classes[name]
			if set == nil {
				set = make(map[int]bool)
				classes[name] = set
			}
			set[m.idx] = true
		}
	}
	r.mu.Lock()
	r.placement = classes
	r.mu.Unlock()
	return nil
}

// Placement returns the class → member-indexes map (sorted), refreshing
// it if empty.
func (r *Router) Placement() (map[string][]int, error) {
	r.mu.Lock()
	empty := len(r.placement) == 0
	r.mu.Unlock()
	if empty {
		if err := r.Refresh(); err != nil {
			return nil, err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]int, len(r.placement))
	for class, set := range r.placement {
		idxs := make([]int, 0, len(set))
		for i := range set {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		out[class] = idxs
	}
	return out, nil
}

// membersFor returns the members carrying class, in index order. An
// unknown class triggers one placement refresh before failing.
func (r *Router) membersFor(class string) ([]*member, error) {
	for refreshed := false; ; refreshed = true {
		r.mu.Lock()
		set, ok := r.placement[class]
		r.mu.Unlock()
		if ok {
			out := make([]*member, 0, len(set))
			for _, m := range r.members {
				if set[m.idx] {
					out = append(out, m)
				}
			}
			return out, nil
		}
		if refreshed {
			return nil, fmt.Errorf("%w: class %q on no member", ErrNoMember, class)
		}
		if err := r.Refresh(); err != nil {
			return nil, err
		}
	}
}

// refMembers collects into set the owning member index of every
// reference inside v (recursively through sets). Nil references carry
// no placement and are skipped.
func refMembers(v model.Value, set map[int]bool) {
	switch v.Kind() {
	case model.KindRef:
		g, _ := v.AsRef()
		if g.IsNil() {
			return
		}
		owner, _ := splitOID(g)
		set[owner] = true
	case model.KindSet:
		vals, _ := v.AsSet()
		for _, e := range vals {
			refMembers(e, set)
		}
	}
}

// memberOf resolves a global OID's owner.
func (r *Router) memberOf(g model.OID) (*member, model.OID, error) {
	idx, local := splitOID(g)
	if idx >= len(r.members) {
		return nil, model.NilOID, fmt.Errorf("%w: OID %s names member %d of %d",
			ErrNoMember, g, idx, len(r.members))
	}
	return r.members[idx], local, nil
}

// --- Single-object operations ------------------------------------------

// Insert creates an object and returns its global OID. References pin
// placement: an insert whose attributes reference existing objects
// lands on the referents' member (references never cross members, so
// the referents must all share one — ErrCrossMember otherwise). A
// ref-free insert is placed by the hash ring among the members whose
// schema carries the class. Either way the placement is permanent: the
// returned OID records the member, so reads never consult the ring.
func (r *Router) Insert(class string, attrs map[string]model.Value) (model.OID, error) {
	members, err := r.membersFor(class)
	if err != nil {
		return model.NilOID, err
	}
	allowed := make(map[int]bool, len(members))
	for _, m := range members {
		allowed[m.idx] = true
	}
	refs := make(map[int]bool)
	for _, v := range attrs {
		refMembers(v, refs)
	}
	var idx int
	switch {
	case len(refs) > 1:
		owners := make([]int, 0, len(refs))
		for i := range refs {
			owners = append(owners, i)
		}
		sort.Ints(owners)
		return model.NilOID, fmt.Errorf("%w: insert references objects on members %v",
			ErrCrossMember, owners)
	case len(refs) == 1:
		for i := range refs {
			idx = i
		}
		if idx >= len(r.members) {
			return model.NilOID, fmt.Errorf("%w: reference names member %d of %d",
				ErrNoMember, idx, len(r.members))
		}
		if !allowed[idx] {
			return model.NilOID, fmt.Errorf("%w: class %q not on member %d, where the referenced objects live",
				ErrNoMember, class, idx)
		}
	default:
		key := class + "#" + strconv.FormatUint(r.insertSeq.Add(1), 10)
		idx = r.ring.owner(key, allowed)
		if idx < 0 {
			return model.NilOID, fmt.Errorf("%w: class %q on no member", ErrNoMember, class)
		}
	}
	m := r.members[idx]
	local := make(map[string]model.Value, len(attrs))
	for name, v := range attrs {
		lv, err := toLocal(m.idx, v)
		if err != nil {
			return model.NilOID, err
		}
		local[name] = lv
	}
	mRoutedOps.Add(1)
	var oid model.OID
	err = r.call(m, false, func(c *client.Client) error {
		var err error
		oid, err = c.Insert(class, local)
		return err
	})
	if err != nil {
		mRoutedErrors.Add(1)
		return model.NilOID, MemberError{Member: m.idx, Addr: m.addr, Err: err}
	}
	return globalOID(m.idx, oid)
}

// Fetch returns the object with its effective attributes; reference
// values come back in the global OID space.
func (r *Router) Fetch(g model.OID) (*client.Object, error) {
	m, local, err := r.memberOf(g)
	if err != nil {
		return nil, err
	}
	mRoutedOps.Add(1)
	var obj *client.Object
	err = r.call(m, true, func(c *client.Client) error {
		var err error
		obj, err = c.FetchFresh(local)
		return err
	})
	if err != nil {
		mRoutedErrors.Add(1)
		return nil, MemberError{Member: m.idx, Addr: m.addr, Err: err}
	}
	out := &client.Object{OID: g, Class: obj.Class, Attrs: make(map[string]model.Value, len(obj.Attrs))}
	for name, v := range obj.Attrs {
		gv, err := toGlobal(m.idx, v)
		if err != nil {
			return nil, err
		}
		out.Attrs[name] = gv
	}
	return out, nil
}

// Get reads one attribute; reference values come back global.
func (r *Router) Get(g model.OID, attr string) (model.Value, error) {
	m, local, err := r.memberOf(g)
	if err != nil {
		return model.Null, err
	}
	mRoutedOps.Add(1)
	var v model.Value
	err = r.call(m, true, func(c *client.Client) error {
		var err error
		v, err = c.Get(local, attr)
		return err
	})
	if err != nil {
		mRoutedErrors.Add(1)
		return model.Null, MemberError{Member: m.idx, Addr: m.addr, Err: err}
	}
	return toGlobal(m.idx, v)
}

// Update writes attributes on the owning member. Reference values must
// be local to that member.
func (r *Router) Update(g model.OID, attrs map[string]model.Value) error {
	m, local, err := r.memberOf(g)
	if err != nil {
		return err
	}
	lattrs := make(map[string]model.Value, len(attrs))
	for name, v := range attrs {
		lv, err := toLocal(m.idx, v)
		if err != nil {
			return err
		}
		lattrs[name] = lv
	}
	mRoutedOps.Add(1)
	if err := r.call(m, true, func(c *client.Client) error { return c.Update(local, lattrs) }); err != nil {
		mRoutedErrors.Add(1)
		return MemberError{Member: m.idx, Addr: m.addr, Err: err}
	}
	return nil
}

// Delete removes the object on its owning member.
func (r *Router) Delete(g model.OID) error {
	m, local, err := r.memberOf(g)
	if err != nil {
		return err
	}
	mRoutedOps.Add(1)
	if err := r.call(m, false, func(c *client.Client) error { return c.Delete(local) }); err != nil {
		mRoutedErrors.Add(1)
		return MemberError{Member: m.idx, Addr: m.addr, Err: err}
	}
	return nil
}

// --- Scatter-gather queries --------------------------------------------

// Query parses src and fans it out to every member carrying the FROM
// class, with bounded parallelism, then merges deterministically:
// results concatenate in member-index order (each member's local order
// preserved), ORDER BY re-sorts the merged rows on the member-evaluated
// key, LIMIT truncates after the merge, and aggregates combine
// arithmetically (COUNT/SUM add, MIN/MAX compare, AVG recomputed from
// shipped SUM+COUNT).
//
// If any member fails after retries, Query returns a *PartialError
// carrying both the failures and the merged rows from the members that
// answered — never a silently truncated plain result.
func (r *Router) Query(src string) (*Result, error) {
	if r.closed.Load() {
		return nil, ErrClosed
	}
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	mScatterQueries.Add(1)
	defer func() { mScatterLatency.Observe(uint64(time.Since(start))) }()
	if len(q.Aggregates) > 0 {
		return r.queryAggregate(q)
	}
	return r.queryRows(q)
}

// memberResult is one member's translated scatter slice.
type memberResult struct {
	m    *member
	res  *client.Result
	rows []Row
	err  error
}

// scatter ships src to every given member with bounded parallelism.
func (r *Router) scatter(members []*member, src string) []memberResult {
	out := make([]memberResult, len(members))
	sem := make(chan struct{}, r.opts.Fanout)
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var res *client.Result
			err := r.call(m, true, func(c *client.Client) error {
				var err error
				res, err = c.Query(src)
				return err
			})
			out[i] = memberResult{m: m, res: res, err: err}
		}(i, m)
	}
	wg.Wait()
	return out
}

// queryRows handles non-aggregate queries.
func (r *Router) queryRows(q *query.Query) (*Result, error) {
	if q.OrderBy != nil && len(q.Select) == 0 {
		return nil, fmt.Errorf("%w: ORDER BY needs an explicit projection in a sharded query", ErrUnsupported)
	}

	// Rewrite: the merge needs the ORDER BY key per row, so if the sort
	// path is not already projected, ship it as an extra trailing column
	// and strip it after the sort. LIMIT ships too — each member's top-K
	// is a superset of the global top-K's slice from that member.
	shipped := *q
	orderIdx := -1
	stripKey := false
	if q.OrderBy != nil {
		for i, p := range q.Select {
			if p.String() == q.OrderBy.String() {
				orderIdx = i
				break
			}
		}
		if orderIdx < 0 {
			shipped.Select = append(append([]query.Path{}, q.Select...), *q.OrderBy)
			orderIdx = len(shipped.Select) - 1
			stripKey = true
		}
	}

	members, err := r.membersFor(q.From)
	if err != nil {
		return nil, err
	}
	results := r.scatter(members, shipped.String())

	// Translate surviving slices into the global OID space.
	var failed []MemberError
	res := &Result{}
	for i := range results {
		mr := &results[i]
		if mr.err != nil {
			failed = append(failed, MemberError{Member: mr.m.idx, Addr: mr.m.addr, Err: mr.err})
			continue
		}
		if res.Cols == nil {
			res.Cols = mr.res.Cols
		}
		for _, row := range mr.res.Rows {
			g, err := globalOID(mr.m.idx, row.OID)
			if err != nil {
				return nil, err
			}
			vals := make([]model.Value, len(row.Values))
			for j, v := range row.Values {
				if vals[j], err = toGlobal(mr.m.idx, v); err != nil {
					return nil, err
				}
			}
			res.Rows = append(res.Rows, Row{OID: g, Values: vals})
		}
	}

	// Deterministic merge: concatenation above followed member-index
	// order; a stable sort on the shipped key keeps that order for ties.
	if q.OrderBy != nil && orderIdx >= 0 {
		sort.SliceStable(res.Rows, func(a, b int) bool {
			c := model.Compare(res.Rows[a].Values[orderIdx], res.Rows[b].Values[orderIdx])
			if q.Desc {
				return c > 0
			}
			return c < 0
		})
	}
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	// res.Cols is nil when no member survived: there is nothing to strip,
	// and slicing would panic instead of reaching the PartialError below.
	if stripKey && len(res.Cols) > 0 {
		res.Cols = res.Cols[:len(res.Cols)-1]
		for i := range res.Rows {
			res.Rows[i].Values = res.Rows[i].Values[:len(res.Rows[i].Values)-1]
		}
	}
	if len(failed) > 0 {
		mScatterPartial.Add(1)
		return nil, &PartialError{Result: res, Failed: failed}
	}
	return res, nil
}

// queryAggregate handles aggregate queries: AVG ships as SUM+COUNT (a
// mean of per-member means would be wrong under skew); everything else
// ships verbatim and combines arithmetically.
func (r *Router) queryAggregate(q *query.Query) (*Result, error) {
	shipped := *q
	shipped.Aggregates = nil
	// plan[i] locates the shipped column(s) feeding original aggregate i.
	type aggPlan struct{ a, b int }
	plan := make([]aggPlan, len(q.Aggregates))
	for i, item := range q.Aggregates {
		if item.Func == query.AggAvg {
			plan[i] = aggPlan{a: len(shipped.Aggregates), b: len(shipped.Aggregates) + 1}
			shipped.Aggregates = append(shipped.Aggregates,
				query.AggItem{Func: query.AggSum, Path: item.Path},
				query.AggItem{Func: query.AggCount, Path: item.Path})
		} else {
			plan[i] = aggPlan{a: len(shipped.Aggregates), b: -1}
			shipped.Aggregates = append(shipped.Aggregates, item)
		}
	}

	members, err := r.membersFor(q.From)
	if err != nil {
		return nil, err
	}
	results := r.scatter(members, shipped.String())

	var failed []MemberError
	var parts [][]model.Value
	for i := range results {
		mr := &results[i]
		if mr.err != nil {
			failed = append(failed, MemberError{Member: mr.m.idx, Addr: mr.m.addr, Err: mr.err})
			continue
		}
		if len(mr.res.Rows) != 1 {
			failed = append(failed, MemberError{Member: mr.m.idx, Addr: mr.m.addr,
				Err: fmt.Errorf("aggregate returned %d rows", len(mr.res.Rows))})
			continue
		}
		parts = append(parts, mr.res.Rows[0].Values)
	}

	res := &Result{Rows: []Row{{}}}
	vals := make([]model.Value, len(q.Aggregates))
	for i, item := range q.Aggregates {
		res.Cols = append(res.Cols, item.String())
		vals[i] = combineAgg(item.Func, plan[i].a, plan[i].b, parts)
	}
	res.Rows[0].Values = vals
	if len(failed) > 0 {
		mScatterPartial.Add(1)
		return nil, &PartialError{Result: res, Failed: failed}
	}
	return res, nil
}

// combineAgg folds one aggregate's per-member values, mirroring the
// engine's semantics (internal/query aggregate): SUM stays Int when
// every part is Int; MIN/MAX skip nulls; AVG over zero rows is Null.
func combineAgg(f query.AggFunc, a, b int, parts [][]model.Value) model.Value {
	switch f {
	case query.AggCount:
		var n int64
		for _, p := range parts {
			if i, ok := p[a].AsInt(); ok {
				n += i
			}
		}
		return model.Int(n)
	case query.AggSum:
		var sum float64
		allInt := true
		for _, p := range parts {
			v := p[a]
			if v.Kind() != model.KindInt {
				allInt = false
			}
			if f, ok := v.AsFloat(); ok {
				sum += f
			}
		}
		if allInt {
			return model.Int(int64(sum))
		}
		return model.Float(sum)
	case query.AggAvg:
		var sum float64
		var n int64
		for _, p := range parts {
			if f, ok := p[a].AsFloat(); ok {
				sum += f
			}
			if i, ok := p[b].AsInt(); ok {
				n += i
			}
		}
		if n == 0 {
			return model.Null
		}
		return model.Float(sum / float64(n))
	default: // MIN, MAX
		best := model.Null
		for _, p := range parts {
			v := p[a]
			if v.IsNull() {
				continue
			}
			if best.IsNull() ||
				(f == query.AggMin && model.Compare(v, best) < 0) ||
				(f == query.AggMax && model.Compare(v, best) > 0) {
				best = v
			}
		}
		return best
	}
}
