package shard

import (
	"bytes"
	"testing"
	"time"

	"oodb"
	"oodb/internal/federation"
	"oodb/internal/model"
	"oodb/internal/server"
	"oodb/internal/server/client"
)

// scanOnly hides RunQuery, forcing the federation through the Scan path.
type scanOnly struct{ federation.Source }

// TestRemoteSourceFederationParity pins the tentpole's first piece: a
// remote kimsrv joins a federation exactly like an in-process database.
// The same queries run against (a) the embedded OOSource, (b) the
// RemoteSource pushdown path, and (c) the RemoteSource Scan fallback —
// all three must agree byte-for-byte on values.
func TestRemoteSourceFederationParity(t *testing.T) {
	db, err := oodb.Open(t.TempDir(), oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.DefineClass("Dept", nil,
		oodb.Attr{Name: "city", Domain: "String"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineClass("Emp", nil,
		oodb.Attr{Name: "name", Domain: "String"},
		oodb.Attr{Name: "salary", Domain: "Integer"},
		oodb.Attr{Name: "dept", Domain: "Dept"}); err != nil {
		t.Fatal(err)
	}
	err = db.Do(func(tx *oodb.Tx) error {
		d1, err := tx.Insert("Dept", map[string]model.Value{"city": model.String("Austin")})
		if err != nil {
			return err
		}
		d2, err := tx.Insert("Dept", map[string]model.Value{"city": model.String("Detroit")})
		if err != nil {
			return err
		}
		for i, spec := range []struct {
			name   string
			salary int64
			dept   model.Value
		}{
			{"alice", 120, model.Ref(d1)},
			{"bob", 90, model.Ref(d2)},
			{"carol", 130, model.Ref(d1)},
			{"dave", 70, model.Null}, // no dept: null mid-path
		} {
			_ = i
			attrs := map[string]model.Value{
				"name": model.String(spec.name), "salary": model.Int(spec.salary)}
			if !spec.dept.IsNull() {
				attrs["dept"] = spec.dept
			}
			if _, err := tx.Insert("Emp", attrs); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	s := server.New(db, server.Options{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Drain(2 * time.Second) })

	remote := NewRemoteSource(s.Addr().String(), client.Options{Role: "app"})
	defer remote.Close()

	embedded := federation.New()
	embedded.Register("m", federation.NewOOSource(db.Engine()))
	pushed := federation.New()
	pushed.Register("m", remote)
	scanned := federation.New()
	scanned.Register("m", scanOnly{remote})

	queries := []string{
		`SELECT name, salary FROM Emp WHERE salary > 80 ORDER BY salary DESC`,
		`SELECT name, dept.city FROM Emp WHERE dept.city = 'Austin' ORDER BY name`,
		`SELECT dept.city FROM Emp ORDER BY name`, // null mid-path projects as null
		`SELECT name FROM Emp ORDER BY name LIMIT 2`,
	}
	for _, qsrc := range queries {
		var encoded [][]byte
		for _, f := range []*federation.Federation{embedded, pushed, scanned} {
			res, err := f.Query("m", qsrc)
			if err != nil {
				t.Fatalf("%q: %v", qsrc, err)
			}
			var b []byte
			for _, row := range res.Rows {
				for _, v := range row.Values {
					b = model.AppendValue(b, v)
				}
				b = append(b, '\n')
			}
			encoded = append(encoded, b)
			if len(res.Rows) == 0 {
				t.Fatalf("%q: empty result proves nothing", qsrc)
			}
		}
		if !bytes.Equal(encoded[0], encoded[1]) {
			t.Fatalf("%q: remote pushdown differs from embedded source", qsrc)
		}
		if !bytes.Equal(encoded[0], encoded[2]) {
			t.Fatalf("%q: remote scan path differs from embedded source", qsrc)
		}
	}

	// Classes surface over the wire like any member's.
	names := remote.Classes()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found["Emp"] || !found["Dept"] {
		t.Fatalf("remote classes = %v", names)
	}

	// Entity access through the remote scan path: nested deref over the
	// wire, unknown attribute is (Null, false) like ooEntity.
	var ent federation.Entity
	if err := remote.Scan("Emp", func(e federation.Entity) bool { ent = e; return false }); err != nil {
		t.Fatal(err)
	}
	if v, ok := ent.Get([]string{"name"}); !ok || v.IsNull() {
		t.Fatalf("entity name = %v, %v", v, ok)
	}
	if _, ok := ent.Get([]string{"mystery"}); ok {
		t.Fatal("unknown attribute resolved")
	}
}
