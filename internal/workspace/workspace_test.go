package workspace

import (
	"testing"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/schema"
)

// partsDB builds a small parts graph: each part has a "next" reference,
// forming a chain, plus a set-valued "connections".
type partsDB struct {
	db   *core.DB
	part *schema.Class
	oids []model.OID
}

func newPartsDB(t *testing.T, n int) *partsDB {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	part, err := db.DefineClass("Part", nil,
		schema.AttrSpec{Name: "x", Domain: schema.ClassInteger})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddAttribute(part.ID, schema.AttrSpec{Name: "next", Domain: part.ID}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddAttribute(part.ID, schema.AttrSpec{Name: "connections", Domain: part.ID, SetValued: true}); err != nil {
		t.Fatal(err)
	}
	p := &partsDB{db: db, part: part}
	err = db.Do(func(tx *core.Tx) error {
		for i := 0; i < n; i++ {
			oid, err := tx.InsertClass(part.ID, map[string]model.Value{"x": model.Int(int64(i))})
			if err != nil {
				return err
			}
			p.oids = append(p.oids, oid)
		}
		// Chain them and add some cross connections.
		for i := 0; i < n; i++ {
			attrs := map[string]model.Value{
				"next": model.Ref(p.oids[(i+1)%n]),
			}
			attrs["connections"] = model.Set(
				model.Ref(p.oids[(i+2)%n]),
				model.Ref(p.oids[(i+3)%n]),
			)
			if err := tx.Update(p.oids[i], attrs); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFetchCachesDescriptors(t *testing.T) {
	p := newPartsDB(t, 5)
	ws := New(p.db)
	d1, err := ws.Fetch(p.oids[0])
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ws.Fetch(p.oids[0])
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("second fetch returned a different descriptor")
	}
	if ws.Fetches != 1 || ws.Hits != 1 {
		t.Errorf("Fetches=%d Hits=%d", ws.Fetches, ws.Hits)
	}
}

func TestDerefSwizzlesOnce(t *testing.T) {
	p := newPartsDB(t, 5)
	ws := New(p.db)
	d, _ := ws.Fetch(p.oids[0])
	n1, err := d.Deref("next")
	if err != nil {
		t.Fatal(err)
	}
	if n1.OID() != p.oids[1] {
		t.Fatalf("next = %v", n1.OID())
	}
	fetchesAfterFirst := ws.Fetches
	// Second deref must be a pure pointer hop: no new fetches.
	n2, _ := d.Deref("next")
	if n2 != n1 {
		t.Fatal("swizzled pointer changed")
	}
	if ws.Fetches != fetchesAfterFirst {
		t.Fatal("second deref hit the database")
	}
}

func TestChainTraversal(t *testing.T) {
	p := newPartsDB(t, 10)
	ws := New(p.db)
	d, _ := ws.Fetch(p.oids[0])
	// Walk the ring twice; the second lap must be fetch-free.
	for lap := 0; lap < 2; lap++ {
		cur := d
		for i := 0; i < 10; i++ {
			next, err := cur.Deref("next")
			if err != nil {
				t.Fatal(err)
			}
			cur = next
		}
		if cur != d {
			t.Fatal("ring did not close")
		}
		if lap == 0 && ws.Fetches != 10 {
			t.Fatalf("first lap fetched %d, want 10", ws.Fetches)
		}
		if lap == 1 && ws.Fetches != 10 {
			t.Fatalf("second lap fetched %d more", ws.Fetches-10)
		}
	}
}

func TestDerefSet(t *testing.T) {
	p := newPartsDB(t, 6)
	ws := New(p.db)
	d, _ := ws.Fetch(p.oids[0])
	conns, err := d.DerefSet("connections")
	if err != nil {
		t.Fatal(err)
	}
	if len(conns) != 2 {
		t.Fatalf("connections = %d", len(conns))
	}
}

func TestSetMarksDirtyAndSaves(t *testing.T) {
	p := newPartsDB(t, 3)
	ws := New(p.db)
	d, _ := ws.Fetch(p.oids[0])
	if err := d.Set("x", model.Int(999)); err != nil {
		t.Fatal(err)
	}
	if !d.Dirty() {
		t.Fatal("Set did not mark dirty")
	}
	if err := ws.Save(); err != nil {
		t.Fatal(err)
	}
	if d.Dirty() {
		t.Fatal("Save left descriptor dirty")
	}
	// Visible through a fresh database read.
	obj, _ := p.db.FetchObject(p.oids[0])
	v, _ := p.db.AttrValue(obj, "x")
	if n, _ := v.AsInt(); n != 999 {
		t.Fatalf("saved value = %v", v)
	}
}

func TestSetDomainChecked(t *testing.T) {
	p := newPartsDB(t, 3)
	ws := New(p.db)
	d, _ := ws.Fetch(p.oids[0])
	if err := d.Set("x", model.String("nope")); err == nil {
		t.Fatal("domain violation accepted")
	}
}

func TestSetReferenceReswizzles(t *testing.T) {
	p := newPartsDB(t, 4)
	ws := New(p.db)
	d, _ := ws.Fetch(p.oids[0])
	first, _ := d.Deref("next")
	if first.OID() != p.oids[1] {
		t.Fatal("initial next wrong")
	}
	if err := d.Set("next", model.Ref(p.oids[3])); err != nil {
		t.Fatal(err)
	}
	second, err := d.Deref("next")
	if err != nil {
		t.Fatal(err)
	}
	if second.OID() != p.oids[3] {
		t.Fatalf("stale swizzled pointer survived Set: %v", second.OID())
	}
}

func TestEvictRefusesDirtyAndUnswizzles(t *testing.T) {
	p := newPartsDB(t, 3)
	ws := New(p.db)
	d0, _ := ws.Fetch(p.oids[0])
	d1, _ := d0.Deref("next")
	d1.Set("x", model.Int(5))
	if ws.Evict(d1.OID()) {
		t.Fatal("evicted a dirty descriptor")
	}
	ws.Save()
	if !ws.Evict(d1.OID()) {
		t.Fatal("clean descriptor not evicted")
	}
	// d0's swizzled pointer must be gone; deref re-fetches a fresh
	// descriptor.
	fresh, err := d0.Deref("next")
	if err != nil {
		t.Fatal(err)
	}
	if fresh == d1 {
		t.Fatal("stale pointer to evicted descriptor survived")
	}
}

func TestDiscardDropsChanges(t *testing.T) {
	p := newPartsDB(t, 3)
	ws := New(p.db)
	d, _ := ws.Fetch(p.oids[0])
	d.Set("x", model.Int(555))
	ws.Discard()
	if ws.Len() != 0 {
		t.Fatal("Discard left residents")
	}
	obj, _ := p.db.FetchObject(p.oids[0])
	v, _ := p.db.AttrValue(obj, "x")
	if n, _ := v.AsInt(); n == 555 {
		t.Fatal("discarded change reached the database")
	}
}

func TestSendOnDescriptor(t *testing.T) {
	p := newPartsDB(t, 3)
	if err := p.db.AddMethod(p.part.ID, "double", func(eng schema.MethodEngine, recv *model.Object, _ []model.Value) (model.Value, error) {
		v, err := p.db.AttrValue(recv, "x")
		if err != nil {
			return model.Null, err
		}
		n, _ := v.AsInt()
		return model.Int(2 * n), nil
	}); err != nil {
		t.Fatal(err)
	}
	ws := New(p.db)
	d, _ := ws.Fetch(p.oids[2])
	got, err := d.Send("double")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := got.AsInt(); n != 4 {
		t.Fatalf("double = %v", got)
	}
}

func TestNullDeref(t *testing.T) {
	p := newPartsDB(t, 3)
	ws := New(p.db)
	// A part with no next.
	var lone model.OID
	p.db.Do(func(tx *core.Tx) error {
		var err error
		lone, err = tx.InsertClass(p.part.ID, map[string]model.Value{"x": model.Int(0)})
		return err
	})
	d, _ := ws.Fetch(lone)
	got, err := d.Deref("next")
	if err != nil || got != nil {
		t.Fatalf("null deref = %v, %v", got, err)
	}
}

func TestSaveFailureKeepsStateConsistent(t *testing.T) {
	// A Save whose transaction fails (write conflict simulated by closing
	// the database) must report the error and keep descriptors dirty so
	// nothing is silently lost.
	p := newPartsDB(t, 2)
	ws := New(p.db)
	d, _ := ws.Fetch(p.oids[0])
	d.Set("x", model.Int(42))
	// Sabotage: delete the object underneath the workspace.
	p.db.Do(func(tx *core.Tx) error { return tx.Delete(p.oids[0]) })
	if err := ws.Save(); err == nil {
		t.Fatal("save of a vanished object succeeded")
	}
	if !d.Dirty() {
		t.Fatal("failed save cleared the dirty flag")
	}
}

func TestTwoWorkspacesAreIndependent(t *testing.T) {
	p := newPartsDB(t, 2)
	ws1 := New(p.db)
	ws2 := New(p.db)
	d1, _ := ws1.Fetch(p.oids[0])
	d2, _ := ws2.Fetch(p.oids[0])
	if d1 == d2 {
		t.Fatal("workspaces share descriptors")
	}
	d1.Set("x", model.Int(77))
	if v, _ := d2.Get("x"); func() int64 { n, _ := v.AsInt(); return n }() == 77 {
		t.Fatal("edit leaked across workspaces before save")
	}
	if err := ws1.Save(); err != nil {
		t.Fatal(err)
	}
	// ws2 still holds its stale copy (no coherence protocol — private
	// databases per §3.3); a fresh fetch after eviction sees the change.
	ws2.Evict(p.oids[0])
	d2b, _ := ws2.Fetch(p.oids[0])
	v, _ := d2b.Get("x")
	if n, _ := v.AsInt(); n != 77 {
		t.Fatalf("refetched value = %v", v)
	}
}
