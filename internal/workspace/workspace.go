// Package workspace implements kimdb's memory-resident object management —
// the LOOM/ORION technique the paper singles out (§3.3 concern 2): "a much
// better solution is to store logical object identifiers within the objects
// in the database, and convert them to memory pointers to related objects"
// as objects are fetched.
//
// A Workspace is a per-application object cache. Fetching an object
// materializes a Descriptor; dereferencing a reference attribute through
// the descriptor swizzles the stored OID into a direct pointer to the
// target descriptor on first use, so repeated navigation costs a pointer
// hop and a map-free attribute read instead of a database call — the
// order-of-magnitude gap experiments E3 and E5 measure.
//
// Dirty descriptors are written back through a transaction at Save time,
// extending transaction semantics over the virtual-memory workspace
// exactly as the paper describes ("systems that manage memory-resident
// objects extend the capabilities of database systems to the virtual-
// memory workspace").
package workspace

import (
	"errors"
	"fmt"

	"oodb/internal/core"
	"oodb/internal/model"
)

// Descriptor is the in-memory representation of one object: its state plus
// the swizzling table for its reference attributes.
type Descriptor struct {
	ws    *Workspace
	obj   *model.Object
	dirty bool
	// swizzled maps attribute -> resolved descriptor (single-valued
	// references only; set-valued references resolve per call).
	swizzled map[model.AttrID]*Descriptor
}

// Workspace is an object cache with OID→pointer conversion.
type Workspace struct {
	db    *core.DB
	cache map[model.OID]*Descriptor

	// Fetches counts loads from the database (cache misses); Hits counts
	// cache and swizzled-pointer hits. The benchmarks read both.
	Fetches uint64
	Hits    uint64
}

// ErrNotReference reports dereferencing a non-reference attribute.
var ErrNotReference = errors.New("workspace: attribute is not a single-valued reference")

// New creates an empty workspace over db.
func New(db *core.DB) *Workspace {
	return &Workspace{db: db, cache: make(map[model.OID]*Descriptor)}
}

// Fetch returns the descriptor for oid, loading the object on first use.
func (ws *Workspace) Fetch(oid model.OID) (*Descriptor, error) {
	if d, ok := ws.cache[oid]; ok {
		ws.Hits++
		mCacheHits.Add(1)
		return d, nil
	}
	obj, err := ws.db.FetchObject(oid)
	if err != nil {
		return nil, err
	}
	ws.Fetches++
	mLazyFetches.Add(1)
	d := &Descriptor{ws: ws, obj: obj, swizzled: make(map[model.AttrID]*Descriptor)}
	ws.cache[oid] = d
	return d, nil
}

// Resident reports whether oid is materialized in the workspace.
func (ws *Workspace) Resident(oid model.OID) bool {
	_, ok := ws.cache[oid]
	return ok
}

// Len returns the number of resident descriptors.
func (ws *Workspace) Len() int { return len(ws.cache) }

// Evict removes a clean descriptor from the workspace. Dirty descriptors
// are kept (their changes would be lost); it reports whether the object is
// gone.
func (ws *Workspace) Evict(oid model.OID) bool {
	d, ok := ws.cache[oid]
	if !ok {
		return true
	}
	if d.dirty {
		return false
	}
	ws.unswizzle(oid)
	delete(ws.cache, oid)
	return true
}

// unswizzle removes pointers to oid from every resident descriptor so an
// evicted object cannot be reached through a stale pointer.
func (ws *Workspace) unswizzle(oid model.OID) {
	for _, d := range ws.cache {
		for attr, target := range d.swizzled {
			if target.obj.OID == oid {
				delete(d.swizzled, attr)
			}
		}
	}
}

// Save writes every dirty descriptor back through one transaction. On
// success the workspace is clean; on error the transaction is aborted and
// descriptors keep their in-memory state.
func (ws *Workspace) Save() error {
	var dirty []*Descriptor
	for _, d := range ws.cache {
		if d.dirty {
			dirty = append(dirty, d)
		}
	}
	if len(dirty) == 0 {
		return nil
	}
	err := ws.db.Do(func(tx *core.Tx) error {
		for _, d := range dirty {
			attrs := make(map[string]model.Value)
			// Write back by attribute name against the effective schema
			// so domain checks run.
			effAttrs, err := ws.db.Catalog.EffectiveAttrs(d.obj.Class())
			if err != nil {
				return err
			}
			for _, a := range effAttrs {
				if v, ok := d.obj.Lookup(a.ID); ok {
					attrs[a.Name] = v
				}
			}
			if err := tx.Update(d.obj.OID, attrs); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	mWriteBacks.Add(uint64(len(dirty)))
	for _, d := range dirty {
		d.dirty = false
	}
	return nil
}

// Discard drops all resident descriptors, losing unsaved changes.
func (ws *Workspace) Discard() {
	ws.cache = make(map[model.OID]*Descriptor)
}

// OID returns the object's identifier.
func (d *Descriptor) OID() model.OID { return d.obj.OID }

// Object exposes the underlying object state (read-only use).
func (d *Descriptor) Object() *model.Object { return d.obj }

// Dirty reports whether the descriptor has unsaved changes.
func (d *Descriptor) Dirty() bool { return d.dirty }

// Get reads an attribute value by name (stored value or class default).
func (d *Descriptor) Get(name string) (model.Value, error) {
	return d.ws.db.AttrValue(d.obj, name)
}

// Set writes an attribute value in memory and marks the descriptor dirty.
// The value is checked against the attribute's domain immediately.
func (d *Descriptor) Set(name string, v model.Value) error {
	a, err := d.ws.db.Catalog.ResolveAttr(d.obj.Class(), name)
	if err != nil {
		return err
	}
	if err := d.ws.db.Catalog.CheckValue(a, v); err != nil {
		return err
	}
	d.obj.Set(a.ID, v)
	delete(d.swizzled, a.ID) // a rewritten reference must re-swizzle
	d.dirty = true
	return nil
}

// Deref follows a single-valued reference attribute, swizzling the stored
// OID into a descriptor pointer on first use. Subsequent calls return the
// cached pointer without consulting the database.
func (d *Descriptor) Deref(name string) (*Descriptor, error) {
	a, err := d.ws.db.Catalog.ResolveAttr(d.obj.Class(), name)
	if err != nil {
		return nil, err
	}
	if target, ok := d.swizzled[a.ID]; ok {
		d.ws.Hits++
		mSwizzleHits.Add(1)
		return target, nil
	}
	v := d.obj.Get(a.ID)
	if v.IsNull() {
		return nil, nil
	}
	oid, ok := v.AsRef()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotReference, name)
	}
	target, err := d.ws.Fetch(oid)
	if err != nil {
		return nil, err
	}
	d.swizzled[a.ID] = target
	return target, nil
}

// DerefSet follows a set-valued reference attribute, returning descriptors
// for every member.
func (d *Descriptor) DerefSet(name string) ([]*Descriptor, error) {
	a, err := d.ws.db.Catalog.ResolveAttr(d.obj.Class(), name)
	if err != nil {
		return nil, err
	}
	v := d.obj.Get(a.ID)
	if v.IsNull() {
		return nil, nil
	}
	members, ok := v.AsSet()
	if !ok {
		return nil, fmt.Errorf("workspace: attribute %q is not set-valued", name)
	}
	out := make([]*Descriptor, 0, len(members))
	for _, m := range members {
		oid, ok := m.AsRef()
		if !ok {
			continue
		}
		t, err := d.ws.Fetch(oid)
		if err != nil {
			continue // dangling member
		}
		out = append(out, t)
	}
	return out, nil
}

// Send dispatches a message to the resident object (late binding through
// the catalog). The method sees the workspace's in-memory state.
func (d *Descriptor) Send(message string, args ...model.Value) (model.Value, error) {
	m, err := d.ws.db.Catalog.ResolveMethod(d.obj.Class(), message)
	if err != nil {
		return model.Null, err
	}
	if m.Impl == nil {
		return model.Null, fmt.Errorf("workspace: method %q has no registered implementation", message)
	}
	return m.Impl(d.ws.db, d.obj, args)
}
