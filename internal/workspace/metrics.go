package workspace

import (
	"oodb/internal/obs"
)

// Process-wide workspace metrics (obs registry). The per-instance
// Fetches/Hits counters the benchmarks read stay plain fields — a
// workspace is single-threaded by design — while these aggregate across
// workspaces for the snapshot.
var (
	mSwizzleHits = obs.RegisterCounter("workspace_swizzle_pointer_hits")
	mCacheHits   = obs.RegisterCounter("workspace_cache_descriptor_hits")
	mLazyFetches = obs.RegisterCounter("workspace_fetch_lazy_loads")
	mWriteBacks  = obs.RegisterCounter("workspace_save_write_backs")
)
