package wal

import (
	"time"

	"oodb/internal/obs"
)

// Process-wide WAL metrics (obs registry). The per-WAL Syncs counter the
// benchmarks read stays on the struct; these aggregate across instances
// and add the latency/batch shape the counters cannot carry.
//
// Accounting contract: Syncs, wal_fsync_latency_ns and
// wal_group_commit_batch record successful rounds only — a failed fsync
// counts in wal_fsync_errors_total instead, so the batching factor and the
// latency distribution are not polluted by errored syncs that made nothing
// durable.
var (
	mAppendBytes  = obs.RegisterCounter("wal_append_bytes_total")
	mAppendRecs   = obs.RegisterCounter("wal_append_records_total")
	mFsyncNs      = obs.RegisterHistogram("wal_fsync_latency_ns")
	mBatchSize    = obs.RegisterHistogram("wal_group_commit_batch")
	mFsyncErrs    = obs.RegisterCounter("wal_fsync_errors_total")
	mFailLatched  = obs.RegisterCounter("wal_failstop_latches_total")
	mCommitWaitNs = obs.RegisterHistogram("wal_commit_wait_ns")
)

// metricsOn reports whether the obs registry is collecting.
func metricsOn() bool { return obs.Enabled() }

// syncTimed wraps the backing file's fsync with the latency histogram and
// the fsync EMA feeding the writer's adaptive batch window. Failures are
// counted separately and observe no latency.
func (w *WAL) syncTimed() error {
	t0 := time.Now()
	err := w.file.Sync()
	el := time.Since(t0)
	if err != nil {
		mFsyncErrs.Add(1)
		return err
	}
	w.emaFsyncNs += 0.25 * (float64(el) - w.emaFsyncNs)
	if obs.Enabled() {
		mFsyncNs.Observe(uint64(el))
	}
	return nil
}
