package wal

import (
	"time"

	"oodb/internal/obs"
)

// Process-wide WAL metrics (obs registry). The per-WAL Syncs counter the
// benchmarks read stays on the struct; these aggregate across instances
// and add the latency/batch shape the counters cannot carry.
var (
	mAppendBytes = obs.RegisterCounter("wal_append_bytes_total")
	mAppendRecs  = obs.RegisterCounter("wal_append_records_total")
	mFsyncNs     = obs.RegisterHistogram("wal_fsync_latency_ns")
	mBatchSize   = obs.RegisterHistogram("wal_group_commit_batch")
)

// syncTimed wraps the backing file's fsync with the latency histogram.
func (w *WAL) syncTimed() error {
	if !obs.Enabled() {
		return w.file.Sync()
	}
	t0 := time.Now()
	err := w.file.Sync()
	mFsyncNs.Observe(uint64(time.Since(t0)))
	return err
}
