package wal

import (
	"os"
	"path/filepath"
	"testing"

	"oodb/internal/model"
)

func openTestWAL(t *testing.T) (*WAL, []Record, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	w, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return w, recs, path
}

func TestAppendAndRecover(t *testing.T) {
	w, recs, path := openTestWAL(t)
	if len(recs) != 0 {
		t.Fatalf("fresh log returned %d records", len(recs))
	}
	oid := model.MakeOID(20, 1)
	w.Append(Record{Txn: 1, Type: RecBegin})
	w.Append(Record{Txn: 1, Type: RecPut, OID: oid, After: []byte("img1")})
	w.Append(Record{Txn: 1, Type: RecCommit})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	if recs[1].Type != RecPut || recs[1].OID != oid || string(recs[1].After) != "img1" {
		t.Errorf("record 1 = %+v", recs[1])
	}
	// LSNs are ascending and resume past the recovered tail.
	if recs[0].LSN >= recs[1].LSN || recs[1].LSN >= recs[2].LSN {
		t.Error("LSNs not ascending")
	}
	lsn, _ := w2.Append(Record{Txn: 2, Type: RecBegin})
	if lsn <= recs[2].LSN {
		t.Error("LSN sequence regressed after reopen")
	}
}

func TestUnsyncedRecordsMayVanish(t *testing.T) {
	// Records appended but never synced are buffered; a reopen (simulating
	// a crash) must not see a torn half-frame as valid data.
	w, _, path := openTestWAL(t)
	w.Append(Record{Txn: 1, Type: RecBegin})
	w.Sync()
	w.Append(Record{Txn: 1, Type: RecPut, OID: model.MakeOID(20, 1), After: []byte("x")})
	// Skip Sync; close the fd directly to drop the buffer.
	w.file.Close()

	_, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d records, want only the synced one", len(recs))
	}
}

func TestTornTailStopsScan(t *testing.T) {
	w, _, path := openTestWAL(t)
	w.Append(Record{Txn: 1, Type: RecBegin})
	w.Append(Record{Txn: 1, Type: RecCommit})
	w.Sync()
	w.Close()

	// Append garbage simulating a torn frame.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte{0, 0, 0, 99, 1, 2, 3, 4, 5})
	f.Close()

	w2, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recs))
	}
	// The torn tail was truncated; appending and reopening stays clean.
	w2.Append(Record{Txn: 2, Type: RecBegin})
	w2.Sync()
	w2.Close()
	_, recs, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("after truncate+append: %d records, want 3", len(recs))
	}
}

func TestCorruptMiddleFrameEndsRecovery(t *testing.T) {
	w, _, path := openTestWAL(t)
	w.Append(Record{Txn: 1, Type: RecBegin})
	w.Append(Record{Txn: 1, Type: RecCommit})
	w.Append(Record{Txn: 2, Type: RecBegin})
	w.Sync()
	w.Close()

	// Flip a byte in the middle of the file.
	data, _ := os.ReadFile(path)
	data[10] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	_, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) >= 3 {
		t.Fatalf("corrupt frame not detected: %d records", len(recs))
	}
}

func TestReset(t *testing.T) {
	w, _, path := openTestWAL(t)
	for i := 0; i < 10; i++ {
		w.Append(Record{Txn: uint64(i), Type: RecBegin})
	}
	w.Sync()
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	size, _ := w.Size()
	if size != 0 {
		t.Fatalf("size after reset = %d", size)
	}
	// Appends continue to work and survive reopen.
	w.Append(Record{Txn: 99, Type: RecBegin})
	w.Sync()
	w.Close()
	_, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Txn != 99 {
		t.Fatalf("post-reset records = %+v", recs)
	}
}

func TestAnalyzeAbortedIsFinished(t *testing.T) {
	// An aborted transaction logged its compensations; replay treats it as
	// finished (redo originals + compensations, no recovery-time undo).
	oid := model.MakeOID(20, 1)
	recs := []Record{
		{LSN: 1, Txn: 1, Type: RecBegin},
		{LSN: 2, Txn: 1, Type: RecPut, OID: oid, Before: []byte("A"), After: []byte("B")},
		{LSN: 3, Txn: 1, Type: RecPut, OID: oid, After: []byte("A")}, // compensation
		{LSN: 4, Txn: 1, Type: RecAbort},
		{LSN: 5, Txn: 2, Type: RecBegin},
		{LSN: 6, Txn: 2, Type: RecPut, OID: oid, Before: []byte("A"), After: []byte("C")},
		{LSN: 7, Txn: 2, Type: RecCommit},
	}
	a := Analyze(recs)
	if !a.Finished[1] || !a.Finished[2] {
		t.Fatalf("Finished = %v", a.Finished)
	}
	redo := a.RedoOps()
	if len(redo) != 3 {
		t.Fatalf("RedoOps = %d records, want 3", len(redo))
	}
	// Forward replay ends with C — the committed value.
	if string(redo[len(redo)-1].After) != "C" {
		t.Fatalf("final redo = %q", redo[len(redo)-1].After)
	}
	if len(a.UndoOps()) != 0 {
		t.Fatalf("UndoOps = %v", a.UndoOps())
	}
}

func TestAnalyzeWinnersAndLosers(t *testing.T) {
	oid1 := model.MakeOID(20, 1)
	oid2 := model.MakeOID(20, 2)
	recs := []Record{
		{LSN: 1, Txn: 1, Type: RecBegin},
		{LSN: 2, Txn: 1, Type: RecPut, OID: oid1, After: []byte("a")},
		{LSN: 3, Txn: 2, Type: RecBegin},
		{LSN: 4, Txn: 2, Type: RecPut, OID: oid2, Before: []byte("old"), After: []byte("b")},
		{LSN: 5, Txn: 1, Type: RecCommit},
		{LSN: 6, Txn: 2, Type: RecDelete, OID: oid1, Before: []byte("a")},
		// txn 2 never commits
	}
	a := Analyze(recs)
	if !a.Finished[1] || a.Finished[2] {
		t.Fatalf("Finished = %v", a.Finished)
	}
	redo := a.RedoOps()
	if len(redo) != 1 || redo[0].LSN != 2 {
		t.Fatalf("RedoOps = %+v", redo)
	}
	undo := a.UndoOps()
	if len(undo) != 2 || undo[0].LSN != 6 || undo[1].LSN != 4 {
		t.Fatalf("UndoOps = %+v", undo)
	}
}

func TestRecordRoundTripAllFields(t *testing.T) {
	rec := Record{
		Txn:    77,
		Type:   RecPut,
		OID:    model.MakeOID(123, 456),
		Before: []byte("before-image"),
		After:  []byte("after-image"),
	}
	w, _, path := openTestWAL(t)
	w.Append(rec)
	w.Sync()
	w.Close()
	_, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got := recs[0]
	if got.Txn != rec.Txn || got.Type != rec.Type || got.OID != rec.OID ||
		string(got.Before) != "before-image" || string(got.After) != "after-image" {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestEmptyImagesStayNil(t *testing.T) {
	w, _, path := openTestWAL(t)
	w.Append(Record{Txn: 1, Type: RecPut, OID: model.MakeOID(20, 1), After: []byte("x")})
	w.Sync()
	w.Close()
	_, recs, _ := Open(path)
	if recs[0].Before != nil {
		t.Error("nil before-image decoded non-nil")
	}
}

func TestSyncGroupDurability(t *testing.T) {
	w, _, path := openTestWAL(t)
	const committers = 16
	done := make(chan error, committers)
	for i := 0; i < committers; i++ {
		go func(i int) {
			if _, err := w.Append(Record{Txn: uint64(i + 1), Type: RecCommit}); err != nil {
				done <- err
				return
			}
			done <- w.SyncGroup()
		}(i)
	}
	for i := 0; i < committers; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	_, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != committers {
		t.Fatalf("recovered %d records, want %d", len(recs), committers)
	}
}

func TestSyncGroupSequential(t *testing.T) {
	// A single committer repeatedly syncing must see every record durable
	// (the loop must not lose the running flag or wedge).
	w, _, path := openTestWAL(t)
	for i := 0; i < 20; i++ {
		w.Append(Record{Txn: uint64(i + 1), Type: RecBegin})
		if err := w.SyncGroup(); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	_, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Fatalf("recovered %d records", len(recs))
	}
}

func BenchmarkCommitSyncSolo(b *testing.B) {
	dir := b.TempDir()
	w, _, err := Open(dir + "/solo.wal")
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Append(Record{Txn: uint64(i), Type: RecCommit})
		if err := w.Sync(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommitSyncGroup8(b *testing.B) {
	dir := b.TempDir()
	w, _, err := Open(dir + "/group.wal")
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.SetParallelism(4) // 8 goroutines on 2 cores
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			w.Append(Record{Txn: 1, Type: RecCommit})
			if err := w.SyncGroup(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
