// Package wal implements kimdb's write-ahead log: logical (object-level)
// redo/undo records appended to a dedicated log file and fsynced at commit.
//
// Recovery model (see internal/core/recover.go for the applier):
//
//   - DML (object put/delete) is logged with before- and after-images and
//     is idempotent to replay against the store;
//   - a checkpoint flushes every dirty page plus the catalog and segment
//     table, then truncates the log, so replay always starts from an empty
//     or post-checkpoint log;
//   - the log tail may be torn by a crash: frames carry checksums, and the
//     first bad frame ends recovery (everything after it was never
//     acknowledged as committed, because commit syncs);
//   - in-place page writes are preceded by a full-page-image record
//     (RecPageImage) made durable before the page write itself
//     (WAL-before-data), so a write torn by a crash can be physically
//     restored before logical replay runs — without the image, amputating a
//     torn page would also lose pre-checkpoint records that are no longer
//     in the log.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"oodb/internal/model"
)

// RecType enumerates log record types.
type RecType uint8

// The log record types.
const (
	RecBegin RecType = iota + 1
	RecCommit
	RecAbort
	RecPut       // object upsert: Before = prior image (nil on insert), After = new image
	RecDelete    // object delete: Before = prior image
	RecPageImage // physical full-page image: OID = page id, After = page bytes

	// RecCompaction marks the start of an online segment compaction
	// (OID = class id). It is replay-inert — compaction moves records
	// between pages without changing any object, so recovery needs no redo
	// or undo for it; the record exists so the log tells maintenance
	// rewrites apart from foreground traffic when reconstructing a crash.
	RecCompaction
)

// Record is one logical log record.
type Record struct {
	LSN    uint64
	Txn    uint64
	Type   RecType
	OID    model.OID
	Before []byte
	After  []byte
	// Epoch is the MVCC commit epoch assigned at commit (RecCommit only,
	// 0 otherwise). Recovery restores the engine's epoch counter to the
	// maximum seen, keeping snapshot epochs monotonic across a crash.
	Epoch uint64
}

// File is the surface the log needs from its backing file. *os.File is the
// production implementation; the fault-injection layer (internal/fault)
// wraps it to script short writes, fsync failures and crashes.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Close() error
}

// WAL is an append-only log file. Appends are buffered; Sync flushes and
// fsyncs. SyncGroup is the group-commit path: concurrent committers
// enqueue and a single fsync makes a whole batch durable.
type WAL struct {
	mu      sync.Mutex
	path    string
	file    File
	w       *bufio.Writer
	nextLSN uint64

	// Group commit state.
	gcMu      sync.Mutex
	gcWaiters []chan error
	gcRunning bool

	// Syncs counts fsyncs performed (observability: commits/Syncs is the
	// group-commit batching factor).
	Syncs atomic.Uint64
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrTorn marks the first unreadable (torn) frame during recovery scan; it
// is internal — Open stops the scan there and returns cleanly.
var errTorn = errors.New("wal: torn frame")

// Open opens the log at path, scans any existing records for recovery and
// positions the log for appending. The returned records are everything
// durably logged since the last checkpoint, in LSN order.
func Open(path string) (*WAL, []Record, error) {
	return OpenWith(path, nil)
}

// OpenWith is Open with a hook wrapping the backing file — the seam the
// fault-injection harness uses to script I/O failures. A nil wrap opens the
// plain file.
func OpenWith(path string, wrap func(File) File) (*WAL, []Record, error) {
	osf, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	var f File = osf
	if wrap != nil {
		f = wrap(f)
	}
	recs, validLen, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop any torn tail so new appends start at a clean boundary.
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &WAL{path: path, file: f, w: bufio.NewWriterSize(f, 1<<16), nextLSN: 1}
	if n := len(recs); n > 0 {
		w.nextLSN = recs[n-1].LSN + 1
	}
	return w, recs, nil
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		w.file.Close()
		return err
	}
	return w.file.Close()
}

// Append assigns the record an LSN and buffers it. The record is durable
// only after a subsequent Sync.
func (w *WAL) Append(rec Record) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec.LSN = w.nextLSN
	w.nextLSN++
	frame := encodeRecord(rec)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(frame)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(frame, crcTable))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.w.Write(frame); err != nil {
		return 0, err
	}
	mAppendBytes.Add(uint64(len(frame)) + 8)
	mAppendRecs.Add(1)
	return rec.LSN, nil
}

// Sync makes all appended records durable. The buffer flush happens under
// the append lock, but the fsync itself does not: records appended during
// the fsync are simply not covered by it, and keeping appends unblocked is
// what gives SyncGroup its batching window.
func (w *WAL) Sync() error {
	w.mu.Lock()
	err := w.w.Flush()
	w.mu.Unlock()
	if err != nil {
		return err
	}
	w.Syncs.Add(1)
	return w.syncTimed()
}

// SyncGroup makes all records appended so far durable, sharing the fsync
// with any other transactions committing concurrently (group commit). It
// returns when a sync that started at or after this call completes. With a
// single committer it behaves like Sync; with N concurrent committers one
// fsync typically serves the whole batch.
func (w *WAL) SyncGroup() error {
	ch := make(chan error, 1)
	w.gcMu.Lock()
	w.gcWaiters = append(w.gcWaiters, ch)
	if !w.gcRunning {
		w.gcRunning = true
		go w.gcLoop()
	}
	w.gcMu.Unlock()
	return <-ch
}

// gcLoop drains commit batches: each iteration takes every waiter queued
// so far, performs one Sync, and reports the result to all of them.
func (w *WAL) gcLoop() {
	for {
		w.gcMu.Lock()
		batch := w.gcWaiters
		w.gcWaiters = nil
		if len(batch) == 0 {
			w.gcRunning = false
			w.gcMu.Unlock()
			return
		}
		w.gcMu.Unlock()
		mBatchSize.Observe(uint64(len(batch)))
		err := w.Sync()
		for _, ch := range batch {
			ch <- err
		}
	}
}

// Reset truncates the log after a checkpoint. All buffered and stored
// records are discarded; the LSN sequence continues (LSNs never repeat
// within a process lifetime).
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.w.Reset(io.Discard) // drop buffered frames
	if err := w.file.Truncate(0); err != nil {
		return err
	}
	if _, err := w.file.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.w.Reset(w.file)
	return w.file.Sync()
}

// Size returns the current log length in bytes (buffered bytes included).
func (w *WAL) Size() (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, err := w.file.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size() + int64(w.w.Buffered()), nil
}

// encodeRecord serializes a record body (without the frame header).
func encodeRecord(rec Record) []byte {
	buf := make([]byte, 0, 32+len(rec.Before)+len(rec.After))
	buf = binary.AppendUvarint(buf, rec.LSN)
	buf = binary.AppendUvarint(buf, rec.Txn)
	buf = append(buf, byte(rec.Type))
	buf = binary.AppendUvarint(buf, uint64(rec.OID))
	buf = binary.AppendUvarint(buf, uint64(len(rec.Before)))
	buf = append(buf, rec.Before...)
	buf = binary.AppendUvarint(buf, uint64(len(rec.After)))
	buf = append(buf, rec.After...)
	buf = binary.AppendUvarint(buf, rec.Epoch)
	return buf
}

func decodeRecord(buf []byte) (Record, error) {
	var rec Record
	lsn, n := binary.Uvarint(buf)
	if n <= 0 {
		return rec, errTorn
	}
	buf = buf[n:]
	txn, n := binary.Uvarint(buf)
	if n <= 0 {
		return rec, errTorn
	}
	buf = buf[n:]
	if len(buf) == 0 {
		return rec, errTorn
	}
	typ := RecType(buf[0])
	buf = buf[1:]
	oid, n := binary.Uvarint(buf)
	if n <= 0 {
		return rec, errTorn
	}
	buf = buf[n:]
	bl, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf)-n) < bl {
		return rec, errTorn
	}
	before := buf[n : n+int(bl)]
	buf = buf[n+int(bl):]
	al, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf)-n) < al {
		return rec, errTorn
	}
	after := buf[n : n+int(al)]
	buf = buf[n+int(al):]
	// Epoch rides at the tail; records written before the field existed
	// simply end here and decode as epoch 0.
	var epoch uint64
	if len(buf) > 0 {
		if e, n := binary.Uvarint(buf); n > 0 {
			epoch = e
		}
	}
	rec = Record{LSN: lsn, Txn: txn, Type: typ, OID: model.OID(oid), Epoch: epoch}
	if bl > 0 {
		rec.Before = append([]byte(nil), before...)
	}
	if al > 0 {
		rec.After = append([]byte(nil), after...)
	}
	return rec, nil
}

// PageImages extracts, for each page id, the last full-page image logged
// in the recovered record stream (LSN order). The map feeds
// storage.RestoreTornPages before the store opens.
func PageImages(recs []Record) map[uint64][]byte {
	var m map[uint64][]byte
	for _, r := range recs {
		if r.Type == RecPageImage {
			if m == nil {
				m = make(map[uint64][]byte)
			}
			m[uint64(r.OID)] = r.After
		}
	}
	return m
}

// scan reads records from the start of the file until EOF or the first
// torn frame, returning the records and the byte length of the valid
// prefix.
func scan(f File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	r := bufio.NewReaderSize(f, 1<<16)
	var recs []Record
	var valid int64
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break // EOF or short header: end of valid prefix
		}
		size := binary.BigEndian.Uint32(hdr[0:])
		sum := binary.BigEndian.Uint32(hdr[4:])
		if size == 0 || size > 1<<28 {
			break
		}
		frame := make([]byte, size)
		if _, err := io.ReadFull(r, frame); err != nil {
			break
		}
		if crc32.Checksum(frame, crcTable) != sum {
			break
		}
		rec, err := decodeRecord(frame)
		if err != nil {
			break
		}
		recs = append(recs, rec)
		valid += int64(8 + size)
	}
	return recs, valid, nil
}

// Analysis partitions recovered records into finished transactions
// (commit OR abort record present) and in-flight losers. Aborted
// transactions count as finished because rollback logs compensation
// records (the restore operations themselves), so replaying an aborted
// transaction forward — originals then compensations — reproduces the
// rolled-back state without a recovery-time undo that could clobber later
// committed writes to the same objects.
type Analysis struct {
	Records  []Record
	Finished map[uint64]bool
}

// Analyze builds the recovery analysis from a recovered record stream.
func Analyze(recs []Record) Analysis {
	a := Analysis{Records: recs, Finished: make(map[uint64]bool)}
	for _, r := range recs {
		if r.Type == RecCommit || r.Type == RecAbort {
			a.Finished[r.Txn] = true
		}
	}
	return a
}

// RedoOps returns the data ops of finished transactions in LSN order
// (for aborted transactions this includes their compensation records,
// which restore the pre-transaction state).
func (a Analysis) RedoOps() []Record {
	var out []Record
	for _, r := range a.Records {
		if (r.Type == RecPut || r.Type == RecDelete) && a.Finished[r.Txn] {
			out = append(out, r)
		}
	}
	return out
}

// UndoOps returns the data ops of in-flight (crashed) transactions in
// reverse LSN order — the order in which their before-images must be
// restored.
func (a Analysis) UndoOps() []Record {
	var out []Record
	for i := len(a.Records) - 1; i >= 0; i-- {
		r := a.Records[i]
		if (r.Type == RecPut || r.Type == RecDelete) && !a.Finished[r.Txn] {
			out = append(out, r)
		}
	}
	return out
}
