// Package wal implements kimdb's write-ahead log: logical (object-level)
// redo/undo records appended to a dedicated log file and fsynced at commit.
//
// Recovery model (see internal/core/recover.go for the applier):
//
//   - DML (object put/delete) is logged with before- and after-images and
//     is idempotent to replay against the store;
//   - a checkpoint flushes every dirty page plus the catalog and segment
//     table, then truncates the log, so replay always starts from an empty
//     or post-checkpoint log;
//   - the log tail may be torn by a crash: frames carry checksums, and the
//     first bad frame ends recovery (everything after it was never
//     acknowledged as committed, because commit syncs);
//   - in-place page writes are preceded by a full-page-image record
//     (RecPageImage) made durable before the page write itself
//     (WAL-before-data), so a write torn by a crash can be physically
//     restored before logical replay runs — without the image, amputating a
//     torn page would also lose pre-checkpoint records that are no longer
//     in the log.
//
// Commit pipeline. All flushes and fsyncs are performed by one dedicated
// writer goroutine. Committers append their records, then park on the
// durability watermark with WaitDurable(lsn) (or register a lazy
// RequestSync for relaxed-durability commits) — the writer accumulates an
// adaptive batch (dual trigger: batch-size target from an EMA of recent
// batch sizes, bounded by a max-wait derived from the EMA of fsync
// latency), flushes the buffer once, fsyncs once, publishes the new
// watermark, and wakes every parked committer it covered. A solo committer
// never waits: the size target adapts down to 1 and the batch window is
// skipped entirely.
//
// Error model (fail-stop). A failed flush or fsync latches the WAL into a
// sticky failed state: after an fsync error the kernel may have discarded
// the dirty pages while keeping the error sticky only for the first caller
// ("fsyncgate"), so a later fsync that returns nil proves nothing about
// the lost writes. Once latched, Append, Sync, SyncGroup, WaitDurable and
// Reset all return the latched error (wrapping ErrFailed and the original
// cause); the only way forward is to close and re-open the log, which
// re-reads the durable prefix from disk.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"oodb/internal/model"
)

// RecType enumerates log record types.
type RecType uint8

// The log record types.
const (
	RecBegin RecType = iota + 1
	RecCommit
	RecAbort
	RecPut       // object upsert: Before = prior image (nil on insert), After = new image
	RecDelete    // object delete: Before = prior image
	RecPageImage // physical full-page image: OID = page id, After = page bytes

	// RecCompaction marks the start of an online segment compaction
	// (OID = class id). It is replay-inert — compaction moves records
	// between pages without changing any object, so recovery needs no redo
	// or undo for it; the record exists so the log tells maintenance
	// rewrites apart from foreground traffic when reconstructing a crash.
	RecCompaction
)

// Record is one logical log record.
type Record struct {
	LSN    uint64
	Txn    uint64
	Type   RecType
	OID    model.OID
	Before []byte
	After  []byte
	// Epoch is the MVCC commit epoch assigned at commit (RecCommit only,
	// 0 otherwise). Recovery restores the engine's epoch counter to the
	// maximum seen, keeping snapshot epochs monotonic across a crash.
	Epoch uint64
}

// File is the surface the log needs from its backing file. *os.File is the
// production implementation; the fault-injection layer (internal/fault)
// wraps it to script short writes, fsync failures and crashes.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Close() error
}

// ErrFailed marks a WAL latched into its sticky failed state by an earlier
// flush or fsync error. Every error returned after the latch wraps both
// ErrFailed and the original cause.
var ErrFailed = errors.New("wal: log failed (sticky; reopen to recover)")

// errClosed reports use of a closed log's commit pipeline.
var errClosed = errors.New("wal: log closed")

// waiter is one committer parked on the durability watermark.
type waiter struct {
	lsn uint64
	ch  chan error
}

// Batching bounds of the writer's adaptive dual trigger.
const (
	maxBatchTarget = 256
	minBatchWait   = 50 * time.Microsecond
	maxBatchWait   = 2 * time.Millisecond
)

// WAL is an append-only log file. Appends are buffered; durability flows
// through the dedicated writer goroutine: Sync/WaitDurable park until the
// watermark covers the requested LSN, RequestSync registers a lazy flush
// for relaxed-durability commits.
type WAL struct {
	mu      sync.Mutex
	path    string
	file    File
	w       *bufio.Writer
	nextLSN uint64

	// durable is the watermark: the highest LSN known fsynced. Monotonic.
	durable atomic.Uint64

	// Sticky failure latch (see the package comment's error model).
	failed    atomic.Bool
	failMu    sync.Mutex
	failCause error

	// Commit pipeline state, owned by the writer goroutine except under pmu.
	pmu       sync.Mutex
	waiters   []waiter
	asyncReq  uint64 // highest LSN with a pending relaxed-durability request
	stopped   bool
	kick      chan struct{} // buffered(1) doorbell: work arrived
	quit      chan struct{}
	writerRip chan struct{} // closed when the writer goroutine exits

	// afterSync, when set, runs after every successful fsync and before
	// the watermark publish — the crash-matrix hook for the one pipeline
	// step that is not itself an I/O op.
	afterSync atomic.Pointer[func()]

	// Adaptive batching state, owned by the writer goroutine.
	emaBatch   float64 // EMA of recent batch sizes (committers per fsync)
	emaFsyncNs float64 // EMA of recent fsync latency

	// Syncs counts successful fsyncs (observability: commits/Syncs is the
	// group-commit batching factor). Failed fsyncs count in
	// wal_fsync_errors_total instead, so the factor is not polluted.
	Syncs atomic.Uint64
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrTorn marks the first unreadable (torn) frame during recovery scan; it
// is internal — Open stops the scan there and returns cleanly.
var errTorn = errors.New("wal: torn frame")

// Open opens the log at path, scans any existing records for recovery and
// positions the log for appending. The returned records are everything
// durably logged since the last checkpoint, in LSN order.
func Open(path string) (*WAL, []Record, error) {
	return OpenWith(path, nil)
}

// OpenWith is Open with a hook wrapping the backing file — the seam the
// fault-injection harness uses to script I/O failures. A nil wrap opens the
// plain file.
func OpenWith(path string, wrap func(File) File) (*WAL, []Record, error) {
	osf, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	var f File = osf
	if wrap != nil {
		f = wrap(f)
	}
	recs, validLen, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop any torn tail so new appends start at a clean boundary.
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &WAL{
		path:       path,
		file:       f,
		w:          bufio.NewWriterSize(f, 1<<16),
		nextLSN:    1,
		kick:       make(chan struct{}, 1),
		quit:       make(chan struct{}),
		writerRip:  make(chan struct{}),
		emaBatch:   1,
		emaFsyncNs: float64(500 * time.Microsecond),
	}
	if n := len(recs); n > 0 {
		w.nextLSN = recs[n-1].LSN + 1
	}
	// Everything scanned was read off the platter: it is durable by
	// construction, so the watermark starts at the recovered tail.
	w.durable.Store(w.nextLSN - 1)
	go w.writerLoop()
	return w, recs, nil
}

// latch flips the WAL into its sticky failed state (first cause wins).
func (w *WAL) latch(cause error) {
	w.failMu.Lock()
	if !w.failed.Load() {
		w.failCause = cause
		w.failed.Store(true)
		mFailLatched.Add(1)
	}
	w.failMu.Unlock()
}

// Err returns nil while the log is healthy, or the latched failure —
// wrapping both ErrFailed and the original cause — once a flush or fsync
// has failed.
func (w *WAL) Err() error {
	if !w.failed.Load() {
		return nil
	}
	w.failMu.Lock()
	defer w.failMu.Unlock()
	return fmt.Errorf("%w: %w", ErrFailed, w.failCause)
}

// Close stops the writer goroutine (draining any parked committers), then
// flushes and closes the log. On a latched log the flush is skipped — its
// buffered frames are unrecoverable by definition — and the latched error
// is returned after the file is closed.
func (w *WAL) Close() error {
	w.pmu.Lock()
	already := w.stopped
	w.stopped = true
	w.pmu.Unlock()
	if !already {
		close(w.quit)
		<-w.writerRip
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.Err(); err != nil {
		w.file.Close()
		return err
	}
	if err := w.w.Flush(); err != nil {
		w.latch(err)
		w.file.Close()
		return err
	}
	return w.file.Close()
}

// Append assigns the record an LSN and buffers it. The record is durable
// only after the watermark passes its LSN (WaitDurable / RequestSync).
func (w *WAL) Append(rec Record) (uint64, error) {
	if err := w.Err(); err != nil {
		return 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	rec.LSN = w.nextLSN
	w.nextLSN++
	frame := encodeRecord(rec)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(frame)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(frame, crcTable))
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.latch(err)
		return 0, err
	}
	if _, err := w.w.Write(frame); err != nil {
		w.latch(err)
		return 0, err
	}
	mAppendBytes.Add(uint64(len(frame)) + 8)
	mAppendRecs.Add(1)
	return rec.LSN, nil
}

// LastLSN returns the most recently assigned LSN (0 if none).
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN - 1
}

// DurableLSN returns the durability watermark: every record with
// LSN ≤ DurableLSN() has been fsynced.
func (w *WAL) DurableLSN() uint64 { return w.durable.Load() }

// WaitDurable parks until the durability watermark reaches lsn, sharing
// the writer goroutine's batched fsync with every other parked committer.
// lsn must be an LSN this log has already assigned (an Append return
// value). Returns the latched error if the log fails.
func (w *WAL) WaitDurable(lsn uint64) error {
	if w.durable.Load() >= lsn {
		return nil
	}
	if err := w.Err(); err != nil {
		return err
	}
	var t0 time.Time
	if metricsOn() {
		t0 = time.Now()
	}
	ch := make(chan error, 1)
	w.pmu.Lock()
	if w.stopped {
		w.pmu.Unlock()
		if err := w.Err(); err != nil {
			return err
		}
		return errClosed
	}
	w.waiters = append(w.waiters, waiter{lsn: lsn, ch: ch})
	w.pmu.Unlock()
	w.kickWriter()
	err := <-ch
	if !t0.IsZero() {
		mCommitWaitNs.Observe(uint64(time.Since(t0)))
	}
	return err
}

// RequestSync registers a relaxed-durability request: the writer will make
// lsn durable on its own schedule (next batch), without parking the
// caller. The bounded-loss contract of CommitAsync: a crash may lose the
// tail of requested-but-unflushed commits, never a prefix gap.
func (w *WAL) RequestSync(lsn uint64) {
	w.pmu.Lock()
	if lsn > w.asyncReq {
		w.asyncReq = lsn
	}
	stopped := w.stopped
	w.pmu.Unlock()
	if !stopped {
		w.kickWriter()
	}
}

// Sync makes every record appended so far durable. Equivalent to
// WaitDurable(LastLSN()): the flush and fsync happen on the writer
// goroutine, batched with any concurrent committers.
func (w *WAL) Sync() error {
	return w.WaitDurable(w.LastLSN())
}

// SyncGroup makes all records appended so far durable, sharing the fsync
// with any other transactions committing concurrently (group commit).
// Retained as a synonym for Sync: since the commit pipeline, every sync is
// a group sync through the writer goroutine.
func (w *WAL) SyncGroup() error {
	return w.Sync()
}

// SetAfterSync installs a hook run after every successful fsync, just
// before the durability watermark is published — the seam crash tests use
// to land a simulated crash between the fsync and the publish. Testing
// only; pass nil to remove.
func (w *WAL) SetAfterSync(fn func()) {
	if fn == nil {
		w.afterSync.Store(nil)
		return
	}
	w.afterSync.Store(&fn)
}

// kickWriter rings the writer's doorbell (coalescing: one buffered slot).
func (w *WAL) kickWriter() {
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// writerLoop is the dedicated WAL writer: it accumulates an adaptive batch
// of parked committers, then performs one flush + fsync for all of them.
func (w *WAL) writerLoop() {
	defer close(w.writerRip)
	for {
		select {
		case <-w.kick:
			w.accumulate()
			w.flushOnce()
		case <-w.quit:
			// Final drain: anything still parked or lazily requested gets
			// one last flush before Close proceeds.
			w.flushOnce()
			return
		}
	}
}

// batchTarget derives the size half of the dual trigger from the EMA of
// recent batch sizes: a solo committer adapts the target down to 1 (no
// wait at all); a busy commit stream raises it so one fsync serves the
// whole burst.
func (w *WAL) batchTarget() int {
	t := int(w.emaBatch + 0.5)
	if t < 1 {
		t = 1
	}
	if t > maxBatchTarget {
		t = maxBatchTarget
	}
	return t
}

// batchWait derives the time half of the dual trigger: waiting longer than
// the fsync itself takes cannot pay for itself, so the window tracks half
// the EMA fsync latency, clamped to [minBatchWait, maxBatchWait].
func (w *WAL) batchWait() time.Duration {
	d := time.Duration(w.emaFsyncNs / 2)
	if d < minBatchWait {
		return minBatchWait
	}
	if d > maxBatchWait {
		return maxBatchWait
	}
	return d
}

// accumulate blocks until the pending batch reaches the adaptive size
// target or the max-wait window closes — the dual trigger.
func (w *WAL) accumulate() {
	target := w.batchTarget()
	if target <= 1 || w.failed.Load() {
		return
	}
	timer := time.NewTimer(w.batchWait())
	defer timer.Stop()
	for {
		w.pmu.Lock()
		n := len(w.waiters)
		w.pmu.Unlock()
		if n >= target {
			return
		}
		select {
		case <-w.kick:
		case <-timer.C:
			return
		case <-w.quit:
			return
		}
	}
}

// flushOnce performs one pipeline round: take every parked committer and
// pending lazy request, flush the buffer, fsync, publish the watermark,
// wake the batch. On error it latches the log and fails the whole batch.
func (w *WAL) flushOnce() {
	w.pmu.Lock()
	batch := w.waiters
	w.waiters = nil
	asyncReq := w.asyncReq
	w.pmu.Unlock()

	if err := w.Err(); err != nil {
		for _, wt := range batch {
			wt.ch <- err
		}
		return
	}

	// Committers already covered by the watermark (an earlier round's
	// fsync ran after they appended) complete without new I/O.
	d := w.durable.Load()
	pending := batch[:0]
	for _, wt := range batch {
		if wt.lsn <= d {
			wt.ch <- nil
		} else {
			pending = append(pending, wt)
		}
	}
	if len(pending) == 0 && asyncReq <= d {
		return
	}

	// Flush under the append lock; the fsync runs outside it, so appends
	// for the next batch keep flowing while this one hits the platter.
	w.mu.Lock()
	upto := w.nextLSN - 1
	err := w.w.Flush()
	w.mu.Unlock()
	if err == nil {
		err = w.syncTimed()
	}
	if err != nil {
		w.latch(err)
		err = w.Err()
		for _, wt := range pending {
			wt.ch <- err
		}
		return
	}

	w.Syncs.Add(1)
	if n := len(pending); n > 0 {
		mBatchSize.Observe(uint64(n))
		w.emaBatch += 0.25 * (float64(n) - w.emaBatch)
	}
	if hook := w.afterSync.Load(); hook != nil {
		(*hook)()
	}
	// Publish the watermark (monotonic: Reset may already have advanced it
	// past this round's flush point).
	for {
		cur := w.durable.Load()
		if upto <= cur || w.durable.CompareAndSwap(cur, upto) {
			break
		}
	}
	for _, wt := range pending {
		wt.ch <- nil
	}
}

// Reset truncates the log after a checkpoint. All buffered and stored
// records are discarded; the LSN sequence continues (LSNs never repeat
// within a process lifetime). The watermark jumps to the current tail:
// every discarded record's durability is now carried by the checkpointed
// pages, so parked or lazy requests for them are trivially satisfied.
func (w *WAL) Reset() error {
	if err := w.Err(); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.w.Reset(io.Discard) // drop buffered frames
	if err := w.file.Truncate(0); err != nil {
		w.latch(err)
		return err
	}
	if _, err := w.file.Seek(0, io.SeekStart); err != nil {
		w.latch(err)
		return err
	}
	w.w.Reset(w.file)
	if err := w.file.Sync(); err != nil {
		w.latch(err)
		return err
	}
	// Monotonic publish, then a kick so the writer drains any waiters the
	// jump satisfied.
	upto := w.nextLSN - 1
	for {
		cur := w.durable.Load()
		if upto <= cur || w.durable.CompareAndSwap(cur, upto) {
			break
		}
	}
	w.kickWriter()
	return nil
}

// Size returns the current log length in bytes (buffered bytes included).
func (w *WAL) Size() (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, err := w.file.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size() + int64(w.w.Buffered()), nil
}

// encodeRecord serializes a record body (without the frame header).
func encodeRecord(rec Record) []byte {
	buf := make([]byte, 0, 32+len(rec.Before)+len(rec.After))
	buf = binary.AppendUvarint(buf, rec.LSN)
	buf = binary.AppendUvarint(buf, rec.Txn)
	buf = append(buf, byte(rec.Type))
	buf = binary.AppendUvarint(buf, uint64(rec.OID))
	buf = binary.AppendUvarint(buf, uint64(len(rec.Before)))
	buf = append(buf, rec.Before...)
	buf = binary.AppendUvarint(buf, uint64(len(rec.After)))
	buf = append(buf, rec.After...)
	buf = binary.AppendUvarint(buf, rec.Epoch)
	return buf
}

func decodeRecord(buf []byte) (Record, error) {
	var rec Record
	lsn, n := binary.Uvarint(buf)
	if n <= 0 {
		return rec, errTorn
	}
	buf = buf[n:]
	txn, n := binary.Uvarint(buf)
	if n <= 0 {
		return rec, errTorn
	}
	buf = buf[n:]
	if len(buf) == 0 {
		return rec, errTorn
	}
	typ := RecType(buf[0])
	buf = buf[1:]
	oid, n := binary.Uvarint(buf)
	if n <= 0 {
		return rec, errTorn
	}
	buf = buf[n:]
	bl, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf)-n) < bl {
		return rec, errTorn
	}
	before := buf[n : n+int(bl)]
	buf = buf[n+int(bl):]
	al, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf)-n) < al {
		return rec, errTorn
	}
	after := buf[n : n+int(al)]
	buf = buf[n+int(al):]
	// Epoch rides at the tail; records written before the field existed
	// simply end here and decode as epoch 0.
	var epoch uint64
	if len(buf) > 0 {
		if e, n := binary.Uvarint(buf); n > 0 {
			epoch = e
		}
	}
	rec = Record{LSN: lsn, Txn: txn, Type: typ, OID: model.OID(oid), Epoch: epoch}
	if bl > 0 {
		rec.Before = append([]byte(nil), before...)
	}
	if al > 0 {
		rec.After = append([]byte(nil), after...)
	}
	return rec, nil
}

// PageImages extracts, for each page id, the last full-page image logged
// in the recovered record stream (LSN order). The map feeds
// storage.RestoreTornPages before the store opens.
func PageImages(recs []Record) map[uint64][]byte {
	var m map[uint64][]byte
	for _, r := range recs {
		if r.Type == RecPageImage {
			if m == nil {
				m = make(map[uint64][]byte)
			}
			m[uint64(r.OID)] = r.After
		}
	}
	return m
}

// scan reads records from the start of the file until EOF or the first
// torn frame, returning the records and the byte length of the valid
// prefix.
func scan(f File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	r := bufio.NewReaderSize(f, 1<<16)
	var recs []Record
	var valid int64
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break // EOF or short header: end of valid prefix
		}
		size := binary.BigEndian.Uint32(hdr[0:])
		sum := binary.BigEndian.Uint32(hdr[4:])
		if size == 0 || size > 1<<28 {
			break
		}
		frame := make([]byte, size)
		if _, err := io.ReadFull(r, frame); err != nil {
			break
		}
		if crc32.Checksum(frame, crcTable) != sum {
			break
		}
		rec, err := decodeRecord(frame)
		if err != nil {
			break
		}
		recs = append(recs, rec)
		valid += int64(8 + size)
	}
	return recs, valid, nil
}

// Analysis partitions recovered records into finished transactions
// (commit OR abort record present) and in-flight losers. Aborted
// transactions count as finished because rollback logs compensation
// records (the restore operations themselves), so replaying an aborted
// transaction forward — originals then compensations — reproduces the
// rolled-back state without a recovery-time undo that could clobber later
// committed writes to the same objects.
type Analysis struct {
	Records  []Record
	Finished map[uint64]bool
}

// Analyze builds the recovery analysis from a recovered record stream.
func Analyze(recs []Record) Analysis {
	a := Analysis{Records: recs, Finished: make(map[uint64]bool)}
	for _, r := range recs {
		if r.Type == RecCommit || r.Type == RecAbort {
			a.Finished[r.Txn] = true
		}
	}
	return a
}

// RedoOps returns the data ops of finished transactions in LSN order
// (for aborted transactions this includes their compensation records,
// which restore the pre-transaction state).
func (a Analysis) RedoOps() []Record {
	var out []Record
	for _, r := range a.Records {
		if (r.Type == RecPut || r.Type == RecDelete) && a.Finished[r.Txn] {
			out = append(out, r)
		}
	}
	return out
}

// UndoOps returns the data ops of in-flight (crashed) transactions in
// reverse LSN order — the order in which their before-images must be
// restored.
func (a Analysis) UndoOps() []Record {
	var out []Record
	for i := len(a.Records) - 1; i >= 0; i-- {
		r := a.Records[i]
		if (r.Type == RecPut || r.Type == RecDelete) && !a.Finished[r.Txn] {
			out = append(out, r)
		}
	}
	return out
}
