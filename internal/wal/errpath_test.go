package wal_test

// Error-path coverage for the log, driven through the fault-injection
// layer (external test package: internal/fault wraps wal.File, so these
// tests cannot live inside package wal).

import (
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"oodb/internal/fault"
	"oodb/internal/model"
	"oodb/internal/wal"
)

func rec(n int64) wal.Record {
	return wal.Record{Txn: 1, Type: wal.RecPut, OID: model.OID(n), After: []byte("payload")}
}

// TestAppendShortWriteTruncatedOnReopen: a short write during the flush
// leaves a partial frame on disk; the error reaches the committer, and the
// next open truncates the torn tail so only fully-written records survive.
func TestAppendShortWriteTruncatedOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	inj := fault.NewInjector(fault.Schedule{Seed: 5})
	w, recs, err := wal.OpenWith(path, fault.WrapWAL(inj))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log scanned %d records", len(recs))
	}
	if _, err := w.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	inj.FailAt(fault.OpWALWrite, 1)
	if _, err := w.Append(rec(2)); err != nil {
		t.Fatal(err) // buffered: the failure surfaces at flush time
	}
	if err := w.Sync(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("sync over short write: err = %v, want ErrInjected", err)
	}
	w.Close()

	w2, recs, err := wal.Open(path)
	if err != nil {
		t.Fatalf("reopen after short write: %v", err)
	}
	defer w2.Close()
	if len(recs) != 1 || recs[0].OID != 1 {
		t.Fatalf("recovered %d records (want just the synced one): %+v", len(recs), recs)
	}
	// The log accepts appends again from the clean boundary.
	if _, err := w2.Append(rec(3)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Sync(); err != nil {
		t.Fatal(err)
	}
	_, recs3, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs3) != 2 || recs3[1].OID != 3 {
		t.Fatalf("after repair: recovered %+v", recs3)
	}
}

// failingSyncFile makes fsync fail on demand while writes keep working —
// the classic full-disk / EIO-on-fsync device.
type failingSyncFile struct {
	wal.File
	fail atomic.Bool
}

var errDeviceSync = errors.New("device: fsync failed")

func (f *failingSyncFile) Sync() error {
	if f.fail.Load() {
		return errDeviceSync
	}
	return f.File.Sync()
}

// TestSyncGroupFailurePropagatesToAllCommitters: when the shared fsync
// fails, every committer batched behind it must see the error — a silent
// nil would acknowledge a commit that never became durable.
func TestSyncGroupFailurePropagatesToAllCommitters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	var ff *failingSyncFile
	w, _, err := wal.OpenWith(path, func(under wal.File) wal.File {
		ff = &failingSyncFile{File: under}
		return ff
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	if _, err := w.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.SyncGroup(); err != nil {
		t.Fatalf("healthy group commit: %v", err)
	}

	ff.fail.Store(true)
	const committers = 8
	errs := make([]error, committers)
	var wg sync.WaitGroup
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := w.Append(rec(int64(10 + i))); err != nil {
				errs[i] = err
				return
			}
			errs[i] = w.SyncGroup()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, errDeviceSync) {
			t.Fatalf("committer %d: err = %v, want the device fsync error", i, err)
		}
	}
}

// TestFsyncErrorLatchesWAL pins the fsyncgate fix: after one failed fsync
// the kernel may already have dropped the dirty pages, so a later fsync
// that reports success proves nothing. The log must latch into a sticky
// failed state — even after the device "recovers", every Append and Sync
// keeps returning the latched error (wrapping both ErrFailed and the
// original cause) — and only a reopen, which re-reads the durable prefix,
// clears it.
func TestFsyncErrorLatchesWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	var ff *failingSyncFile
	w, _, err := wal.OpenWith(path, func(under wal.File) wal.File {
		ff = &failingSyncFile{File: under}
		return ff
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := w.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	ff.fail.Store(true)
	if _, err := w.Append(rec(2)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); !errors.Is(err, errDeviceSync) || !errors.Is(err, wal.ErrFailed) {
		t.Fatalf("failed sync: err = %v, want ErrFailed wrapping the device error", err)
	}

	// The device "recovers" — exactly the fsyncgate trap. The latch must
	// hold anyway.
	ff.fail.Store(false)
	if _, err := w.Append(rec(3)); !errors.Is(err, wal.ErrFailed) {
		t.Fatalf("Append after latch: err = %v, want ErrFailed", err)
	}
	if err := w.Sync(); !errors.Is(err, wal.ErrFailed) {
		t.Fatalf("Sync after latch: err = %v, want ErrFailed", err)
	}
	if err := w.SyncGroup(); !errors.Is(err, wal.ErrFailed) {
		t.Fatalf("SyncGroup after latch: err = %v, want ErrFailed", err)
	}
	if err := w.Reset(); !errors.Is(err, wal.ErrFailed) {
		t.Fatalf("Reset after latch: err = %v, want ErrFailed", err)
	}
	if err := w.Err(); !errors.Is(err, errDeviceSync) {
		t.Fatalf("Err() = %v, want the original cause preserved", err)
	}
	if err := w.Close(); !errors.Is(err, wal.ErrFailed) {
		t.Fatalf("Close of latched log: err = %v, want ErrFailed", err)
	}

	// Reopen recovers a clean prefix: the synced record is guaranteed; the
	// record behind the failed fsync is indeterminate (its flush reached
	// the file, the fsync never vouched for it); the latched append (3)
	// must NOT appear — it was refused.
	w2, recs, err := wal.Open(path)
	if err != nil {
		t.Fatalf("reopen after latch: %v", err)
	}
	defer w2.Close()
	if len(recs) < 1 || len(recs) > 2 || recs[0].OID != 1 {
		t.Fatalf("recovered %+v, want the durable record (+ optionally the indeterminate one)", recs)
	}
	for _, r := range recs {
		if r.OID == 3 {
			t.Fatalf("latched append leaked into the log: %+v", recs)
		}
	}
	if _, err := w2.Append(rec(4)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestResetRacesGroupCommitCrash: checkpoint truncation racing committers
// racing a crash. Nothing here asserts which records survive — the assert
// is that nothing deadlocks or panics (run under -race) and that the log
// scans cleanly afterwards.
func TestResetRacesGroupCommitCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	inj := fault.NewInjector(fault.Schedule{Seed: 13, CrashAt: 60})
	w, _, err := wal.OpenWith(path, fault.WrapWAL(inj))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				if _, err := w.Append(rec(int64(g*1000 + i))); err != nil {
					return
				}
				if err := w.SyncGroup(); err != nil {
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if err := w.Reset(); err != nil {
				return
			}
		}
	}()
	wg.Wait()
	if !inj.Crashed() {
		t.Fatal("workers stopped before the crash fired")
	}

	if _, _, err := wal.Open(path); err != nil {
		t.Fatalf("log does not scan cleanly after crash: %v", err)
	}
}
