package wal

import (
	"sync"
	"testing"
)

// TestGroupCommitBatches verifies that concurrent committers actually
// share fsyncs: the number of syncs must be well below the number of
// commits.
func TestGroupCommitBatches(t *testing.T) {
	w, _, _ := openTestWAL(t)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				w.Append(Record{Txn: uint64(i + 1), Type: RecCommit})
				if err := w.SyncGroup(); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	commits := workers * per
	syncs := w.Syncs.Load()
	t.Logf("commits=%d syncs=%d batch=%.1f", commits, syncs, float64(commits)/float64(syncs))
	if syncs >= uint64(commits) {
		t.Fatalf("no batching: %d syncs for %d commits", syncs, commits)
	}
}
