package wal

// Unit coverage for the commit pipeline: the dedicated writer goroutine,
// the durability watermark, relaxed-durability requests, and the close
// drain. The sticky-latch error path lives in errpath_test.go (it needs
// the external fault wrappers).

import (
	"sync"
	"testing"
	"time"
)

func TestWatermarkOrdering(t *testing.T) {
	w, _, _ := openTestWAL(t)
	defer w.Close()
	var lsns []uint64
	for i := 0; i < 3; i++ {
		lsn, err := w.Append(Record{Txn: 1, Type: RecBegin})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if got := w.DurableLSN(); got != 0 {
		t.Fatalf("watermark before any sync = %d", got)
	}
	if err := w.WaitDurable(lsns[1]); err != nil {
		t.Fatal(err)
	}
	// The flush covers everything buffered, so the watermark lands at the
	// tail, not just the requested LSN.
	if got := w.DurableLSN(); got < lsns[1] {
		t.Fatalf("watermark %d below awaited LSN %d", got, lsns[1])
	}
	if got := w.LastLSN(); w.DurableLSN() != got {
		t.Fatalf("watermark %d, tail %d: flush should cover the buffer", w.DurableLSN(), got)
	}
	// Waiting on an already-durable LSN is a no-op (no new fsync).
	syncs := w.Syncs.Load()
	if err := w.WaitDurable(lsns[0]); err != nil {
		t.Fatal(err)
	}
	if w.Syncs.Load() != syncs {
		t.Fatal("WaitDurable below the watermark performed a redundant fsync")
	}
}

func TestRequestSyncEventuallyDurable(t *testing.T) {
	w, _, path := openTestWAL(t)
	lsn, err := w.Append(Record{Txn: 9, Type: RecCommit})
	if err != nil {
		t.Fatal(err)
	}
	w.RequestSync(lsn)
	deadline := time.Now().Add(5 * time.Second)
	for w.DurableLSN() < lsn {
		if time.Now().After(deadline) {
			t.Fatalf("async request never became durable (watermark %d, want %d)", w.DurableLSN(), lsn)
		}
		time.Sleep(time.Millisecond)
	}
	w.Close()
	_, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Txn != 9 {
		t.Fatalf("recovered %+v", recs)
	}
}

func TestCloseDrainsPendingAsync(t *testing.T) {
	// Relaxed-durability requests still pending at Close must be flushed
	// by the writer's final drain, not dropped with the buffer.
	w, _, path := openTestWAL(t)
	const n = 25
	for i := 0; i < n; i++ {
		lsn, err := w.Append(Record{Txn: uint64(i + 1), Type: RecCommit})
		if err != nil {
			t.Fatal(err)
		}
		w.RequestSync(lsn)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("recovered %d records after close drain, want %d", len(recs), n)
	}
}

func TestWriterBatchesConcurrentCommitters(t *testing.T) {
	// The adaptive dual trigger must pull well clear of one-fsync-per-
	// commit under sustained concurrency (the acceptance bar in the bench
	// is mean batch >= 8 at 32 committers; here just assert real sharing).
	w, _, _ := openTestWAL(t)
	defer w.Close()
	const workers, per = 32, 60
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				lsn, err := w.Append(Record{Txn: uint64(i + 1), Type: RecCommit})
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.WaitDurable(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	commits := uint64(workers * per)
	syncs := w.Syncs.Load()
	t.Logf("commits=%d syncs=%d batch=%.1f", commits, syncs, float64(commits)/float64(syncs))
	if syncs*4 > commits {
		t.Fatalf("weak batching: %d syncs for %d commits (mean %.1f, want >= 4)",
			syncs, commits, float64(commits)/float64(syncs))
	}
}

func TestResetSatisfiesParkedRequests(t *testing.T) {
	// A checkpoint Reset discards records whose durability is now carried
	// by the flushed pages; the watermark must jump so lazy requests for
	// them complete instead of waiting for a flush of truncated bytes.
	w, _, _ := openTestWAL(t)
	defer w.Close()
	lsn, err := w.Append(Record{Txn: 1, Type: RecCommit})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := w.DurableLSN(); got < lsn {
		t.Fatalf("watermark %d did not advance over reset tail %d", got, lsn)
	}
	if err := w.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	// LSNs never regress across Reset.
	next, err := w.Append(Record{Txn: 2, Type: RecBegin})
	if err != nil {
		t.Fatal(err)
	}
	if next <= lsn {
		t.Fatalf("LSN regressed across Reset: %d after %d", next, lsn)
	}
}

func TestAfterSyncHookRunsBeforePublish(t *testing.T) {
	w, _, _ := openTestWAL(t)
	defer w.Close()
	var sawWatermark []uint64
	w.SetAfterSync(func() {
		sawWatermark = append(sawWatermark, w.DurableLSN())
	})
	lsn, err := w.Append(Record{Txn: 1, Type: RecCommit})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if len(sawWatermark) == 0 {
		t.Fatal("afterSync hook never ran")
	}
	// The hook observes the pre-publish watermark: the fsync that made lsn
	// durable has happened, but the publish has not.
	if sawWatermark[0] >= lsn {
		t.Fatalf("hook saw watermark %d, want < %d (pre-publish)", sawWatermark[0], lsn)
	}
}
