package federation

import (
	"testing"

	"oodb/internal/model"
	"oodb/internal/relational"
)

// evalWorld builds a relational member with enough variety to exercise
// every predicate form of the federated evaluator.
func evalWorld(t *testing.T) *Federation {
	t.Helper()
	rdb := relational.NewDB()
	p, err := rdb.Create("Part", "id", "name", "weight", "active", "grade")
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		id     int64
		name   string
		weight float64
		active bool
		grade  string
	}{
		{1, "bolt", 0.5, true, "a"},
		{2, "plate", 12.5, false, "b"},
		{3, "girder", 140, true, "a"},
		{4, "shim", 0.1, false, "c"},
	}
	for _, r := range rows {
		p.Insert(model.Int(r.id), model.String(r.name), model.Float(r.weight),
			model.Bool(r.active), model.String(r.grade))
	}
	rs := NewRelSource(rdb)
	if err := rs.Export("Part"); err != nil {
		t.Fatal(err)
	}
	f := New()
	f.Register("inv", rs)
	return f
}

func ids(t *testing.T, f *Federation, where string) []int64 {
	t.Helper()
	res, err := f.Query("inv", "SELECT id FROM Part "+where)
	if err != nil {
		t.Fatalf("%s: %v", where, err)
	}
	var out []int64
	for _, row := range res.Rows {
		n, _ := row.Values[0].AsInt()
		out = append(out, n)
	}
	return out
}

func wantIDs(t *testing.T, got []int64, want ...int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	set := map[int64]bool{}
	for _, g := range got {
		set[g] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestFederatedPredicateForms(t *testing.T) {
	f := evalWorld(t)
	wantIDs(t, ids(t, f, `WHERE weight > 1.0`), 2, 3)
	wantIDs(t, ids(t, f, `WHERE weight >= 0.5 AND weight <= 12.5`), 1, 2)
	wantIDs(t, ids(t, f, `WHERE weight < 0.2 OR weight > 100`), 3, 4)
	wantIDs(t, ids(t, f, `WHERE NOT active`), 2, 4)
	wantIDs(t, ids(t, f, `WHERE active`), 1, 3)
	wantIDs(t, ids(t, f, `WHERE active = true AND grade = 'a'`), 1, 3)
	wantIDs(t, ids(t, f, `WHERE name != 'bolt'`), 2, 3, 4)
	wantIDs(t, ids(t, f, `WHERE grade IN ('a', 'c')`), 1, 3, 4)
	wantIDs(t, ids(t, f, `WHERE id IN (2)`), 2)
	wantIDs(t, ids(t, f, `WHERE (grade = 'a' OR grade = 'b') AND weight > 10`), 2, 3)
	// Mixed numeric comparison (int column vs float literal).
	wantIDs(t, ids(t, f, `WHERE id <= 2.5`), 1, 2)
}

func TestFederatedUnknownColumnIsError(t *testing.T) {
	f := evalWorld(t)
	// Unknown first path step: ok=false -> value null -> comparison false;
	// a projection of it yields null. This is lenient-by-design for
	// heterogeneous members: assert the behavior.
	res, err := f.Query("inv", `SELECT nosuch FROM Part LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0].Values[0].IsNull() {
		t.Fatalf("unknown column projected as %v", res.Rows[0].Values[0])
	}
	got := ids(t, f, `WHERE nosuch = 1`)
	if len(got) != 0 {
		t.Fatalf("unknown column matched rows: %v", got)
	}
}

func TestFederatedOrderAndLimitInteraction(t *testing.T) {
	f := evalWorld(t)
	res, err := f.Query("inv", `SELECT id, weight FROM Part ORDER BY weight DESC LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if n, _ := res.Rows[0].Values[0].AsInt(); n != 3 {
		t.Fatalf("heaviest = %v", res.Rows[0].Values[0])
	}
	if n, _ := res.Rows[1].Values[0].AsInt(); n != 2 {
		t.Fatalf("second = %v", res.Rows[1].Values[0])
	}
}
