package federation

import (
	"bytes"
	"fmt"
	"testing"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/schema"
)

// scanOnly hides the QueryableSource extension of a source, forcing the
// federation through the per-entity Scan + evaluator path.
type scanOnly struct{ Source }

// encodeRows renders a federated result into the engine's canonical value
// encoding, row by row, so two results can be compared byte-identically.
func encodeRows(res *Result) []byte {
	var buf []byte
	for _, row := range res.Rows {
		for _, v := range row.Values {
			buf = model.AppendValue(buf, v)
		}
		buf = append(buf, '\n')
	}
	return buf
}

// TestPushdownDifferential pins the QueryableSource contract: for every
// eligible query shape, the pushed-down result is byte-identical to the
// Scan+evaluator path over the same data.
func TestPushdownDifferential(t *testing.T) {
	odb, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer odb.Close()
	dept, _ := odb.DefineClass("Dept", nil,
		schema.AttrSpec{Name: "city", Domain: schema.ClassString})
	emp, _ := odb.DefineClass("Emp", nil,
		schema.AttrSpec{Name: "name", Domain: schema.ClassString},
		schema.AttrSpec{Name: "salary", Domain: schema.ClassInteger},
		schema.AttrSpec{Name: "dept", Domain: dept.ID},
		schema.AttrSpec{Name: "grade", Domain: schema.ClassString, Default: model.String("junior")})
	odb.DefineClass("Manager", []model.ClassID{emp.ID},
		schema.AttrSpec{Name: "reports", Domain: schema.ClassInteger})

	tx := odb.Begin()
	cities := []string{"Austin", "Detroit", "Paris"}
	var depts []model.OID
	for _, c := range cities {
		d, err := tx.InsertClass(dept.ID, map[string]model.Value{"city": model.String(c)})
		if err != nil {
			t.Fatal(err)
		}
		depts = append(depts, d)
	}
	for i := 0; i < 40; i++ {
		attrs := map[string]model.Value{
			"name":   model.String(fmt.Sprintf("e%02d", i)),
			"salary": model.Int(int64(50 + i*7%100)),
		}
		if i%5 != 0 { // a few employees have no dept (null mid-path)
			attrs["dept"] = model.Ref(depts[i%len(depts)])
		}
		if i%3 == 0 {
			attrs["grade"] = model.String("senior")
		}
		class := "Emp"
		if i%4 == 0 {
			class = "Manager"
			attrs["reports"] = model.Int(int64(i))
		}
		if _, err := tx.Insert(class, attrs); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	src := NewOOSource(odb)
	pushed := New()
	pushed.Register("oo", src)
	scanned := New()
	scanned.Register("oo", scanOnly{src})

	queries := []string{
		// Plain projection + predicate.
		`SELECT name, salary FROM Emp WHERE salary > 80 ORDER BY name`,
		// Nested path through a reference, null mid-path included.
		`SELECT name, dept.city FROM Emp WHERE dept.city = 'Austin' ORDER BY name`,
		// Default values visible through both paths.
		`SELECT name FROM Emp WHERE grade = 'junior' ORDER BY name`,
		// Hierarchy scope: Managers appear under Emp on both paths.
		`SELECT name FROM Emp WHERE salary >= 50 ORDER BY name DESC`,
		// LIMIT after ORDER BY.
		`SELECT name, salary FROM Emp ORDER BY name LIMIT 7`,
		// Compound predicate.
		`SELECT name FROM Emp WHERE salary > 60 AND grade = 'senior' ORDER BY name`,
	}
	for _, qsrc := range queries {
		rp, err := pushed.Query("oo", qsrc)
		if err != nil {
			t.Fatalf("pushdown %q: %v", qsrc, err)
		}
		rs, err := scanned.Query("oo", qsrc)
		if err != nil {
			t.Fatalf("scan %q: %v", qsrc, err)
		}
		if len(rp.Cols) != len(rs.Cols) {
			t.Fatalf("%q: cols %v vs %v", qsrc, rp.Cols, rs.Cols)
		}
		for i := range rp.Cols {
			if rp.Cols[i] != rs.Cols[i] {
				t.Fatalf("%q: cols %v vs %v", qsrc, rp.Cols, rs.Cols)
			}
		}
		bp, bs := encodeRows(rp), encodeRows(rs)
		if !bytes.Equal(bp, bs) {
			t.Fatalf("%q: pushdown result differs from evaluator path\npushdown: %d rows\nscan:     %d rows",
				qsrc, len(rp.Rows), len(rs.Rows))
		}
		if len(rp.Rows) == 0 {
			t.Fatalf("%q: empty result proves nothing", qsrc)
		}
	}
}

// TestPushdownDecline pins the fallback: queries the engine would reject
// (unknown attribute) still succeed through the lenient evaluator path,
// so the pushdown is never a semantic fork.
func TestPushdownDecline(t *testing.T) {
	odb, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer odb.Close()
	cl, _ := odb.DefineClass("Thing", nil,
		schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	tx := odb.Begin()
	if _, err := tx.InsertClass(cl.ID, map[string]model.Value{"n": model.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	f := New()
	f.Register("oo", NewOOSource(odb))
	// The engine errors on the unknown attribute; the federation must
	// fall back to the lenient path (0 rows, no error).
	res, err := f.Query("oo", `SELECT n FROM Thing WHERE mystery = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Entity-shaped results (no projection) never push down.
	res, err = f.Query("oo", `SELECT * FROM Thing`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 1 || res.Cols[0] != "entity" || len(res.Rows) != 1 || res.Rows[0].Entity == nil {
		t.Fatalf("entity result = %+v", res)
	}
}
