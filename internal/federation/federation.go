// Package federation implements the migration path of Kim §5.2: "allow
// the user to access a heterogeneous mix of databases under the illusion
// of a single common data model", with the object-oriented data model as
// the common model.
//
// Sources adapt member databases to the common model: the bundled adapters
// cover a kimdb object database (classes, hierarchy scope, nested paths)
// and the relational engine (relations as classes, columns as attributes,
// declared foreign keys traversed as aggregation — a relational tuple
// presents its referenced tuples as nested objects). New kinds of member
// database join the federation by implementing Source, exactly the
// extensibility argument the paper makes for the OO common model.
package federation

import (
	"errors"
	"fmt"
	"sort"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/query"
	"oodb/internal/relational"
)

// Entity is one object of a member database viewed through the common
// model: attribute paths resolve to values, nested steps traversing
// whatever the member database uses for relationships.
type Entity interface {
	// Get resolves an attribute path; ok is false if any step is unknown.
	Get(path []string) (v model.Value, ok bool)
}

// Source adapts one member database.
type Source interface {
	// Classes lists the class names this source exports.
	Classes() []string
	// Scan iterates the instances of a class.
	Scan(class string, fn func(Entity) bool) error
}

// QueryableSource is an optional Source extension for members that can
// evaluate a whole query themselves — a kimdb engine with its planner and
// indexes, or a remote server reached over the wire — instead of being
// driven through the per-entity Scan + predicate-evaluator path.
//
// RunQuery returns handled=false (with a nil error) to decline a query it
// cannot or should not evaluate natively; the federation then falls back
// to the Scan path. A source must only report handled=true for results
// that match the fallback evaluator's semantics — the pushdown is an
// optimization, never a semantic fork (pinned by the differential test).
type QueryableSource interface {
	Source
	RunQuery(q *query.Query) (res *Result, handled bool, err error)
}

// pushdownable reports whether a parsed query is eligible for
// QueryableSource pushdown. Queries without an explicit projection are
// excluded (the scan path returns entity rows, which have no wire/native
// equivalent), as are aggregates (rejected in federated queries anyway)
// and ONLY scope (the common model's Scan is always hierarchy-scoped, so
// a native ONLY would change semantics).
func pushdownable(q *query.Query) bool {
	return len(q.Select) > 0 && len(q.Aggregates) == 0 && !q.Only
}

// Errors of the federation layer.
var (
	ErrNoSource = errors.New("federation: no such source")
	ErrNoClass  = errors.New("federation: no such class in source")
)

// Federation is a registry of sources plus the federated query facility.
type Federation struct {
	sources map[string]Source
}

// New returns an empty federation.
func New() *Federation { return &Federation{sources: make(map[string]Source)} }

// Register adds a member database under a name.
func (f *Federation) Register(name string, src Source) {
	f.sources[name] = src
}

// Sources lists registered member names.
func (f *Federation) Sources() []string {
	out := make([]string, 0, len(f.sources))
	for n := range f.sources {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Row is one federated result row.
type Row struct {
	Entity Entity
	Values []model.Value
}

// Result is a federated query result.
type Result struct {
	Cols []string
	Rows []Row
}

// Query runs a query (the standard kimdb query language) against one
// member database. The FROM class resolves inside that source; predicates
// and projections evaluate through the common model, so the same query
// text works against an object member and a relational member.
func (f *Federation) Query(source, src string) (*Result, error) {
	s, ok := f.sources[source]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSource, source)
	}
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(q.Aggregates) > 0 {
		return nil, errors.New("federation: aggregates are not supported in federated queries")
	}
	found := false
	for _, c := range s.Classes() {
		if c == q.From {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoClass, source, q.From)
	}
	if qs, can := s.(QueryableSource); can && pushdownable(q) {
		res, handled, err := qs.RunQuery(q)
		if err != nil {
			return nil, err
		}
		if handled {
			return res, nil
		}
	}
	res := &Result{}
	if len(q.Select) == 0 {
		res.Cols = []string{"entity"}
	} else {
		for _, p := range q.Select {
			res.Cols = append(res.Cols, p.String())
		}
	}
	var evalErr error
	err = s.Scan(q.From, func(ent Entity) bool {
		if q.Where != nil {
			ok, err := evalBool(q.Where, ent)
			if err != nil {
				evalErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		row := Row{Entity: ent}
		for _, p := range q.Select {
			v, _ := ent.Get(p.Steps)
			row.Values = append(row.Values, v)
		}
		res.Rows = append(res.Rows, row)
		return q.Limit == 0 || q.OrderBy != nil || len(res.Rows) < q.Limit
	})
	if err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}
	if q.OrderBy != nil {
		keys := make([]model.Value, len(res.Rows))
		for i, row := range res.Rows {
			keys[i], _ = row.Entity.Get(q.OrderBy.Steps)
		}
		idxs := make([]int, len(res.Rows))
		for i := range idxs {
			idxs[i] = i
		}
		sort.SliceStable(idxs, func(a, b int) bool {
			c := model.Compare(keys[idxs[a]], keys[idxs[b]])
			if q.Desc {
				return c > 0
			}
			return c < 0
		})
		sorted := make([]Row, len(res.Rows))
		for i, j := range idxs {
			sorted[i] = res.Rows[j]
		}
		res.Rows = sorted
	}
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

// evalBool evaluates a parsed predicate against an entity of the common
// model.
func evalBool(ex query.Expr, ent Entity) (bool, error) {
	switch n := ex.(type) {
	case *query.Binary:
		switch n.Op {
		case query.OpAnd:
			l, err := evalBool(n.L, ent)
			if err != nil || !l {
				return false, err
			}
			return evalBool(n.R, ent)
		case query.OpOr:
			l, err := evalBool(n.L, ent)
			if err != nil || l {
				return l, err
			}
			return evalBool(n.R, ent)
		case query.OpIn:
			lv, err := evalValue(n.L, ent)
			if err != nil {
				return false, err
			}
			list, ok := n.R.(*query.List)
			if !ok {
				return false, errors.New("federation: IN requires a literal list")
			}
			for _, item := range list.Items {
				if model.Equal(lv, item) {
					return true, nil
				}
			}
			return false, nil
		case query.OpContains:
			lv, err := evalValue(n.L, ent)
			if err != nil {
				return false, err
			}
			rv, err := evalValue(n.R, ent)
			if err != nil {
				return false, err
			}
			return lv.Contains(rv), nil
		default:
			lv, err := evalValue(n.L, ent)
			if err != nil {
				return false, err
			}
			rv, err := evalValue(n.R, ent)
			if err != nil {
				return false, err
			}
			return cmp(n.Op, lv, rv), nil
		}
	case *query.Not:
		v, err := evalBool(n.E, ent)
		return !v, err
	case *query.PathExpr:
		v, _ := ent.Get(n.Path.Steps)
		b, _ := v.AsBool()
		return b, nil
	case *query.Lit:
		b, _ := n.V.AsBool()
		return b, nil
	default:
		return false, fmt.Errorf("federation: cannot evaluate %T", ex)
	}
}

func evalValue(ex query.Expr, ent Entity) (model.Value, error) {
	switch n := ex.(type) {
	case *query.Lit:
		return n.V, nil
	case *query.PathExpr:
		v, _ := ent.Get(n.Path.Steps)
		return v, nil
	default:
		return model.Null, fmt.Errorf("federation: cannot evaluate %T as value", ex)
	}
}

func cmp(op query.BinOp, l, r model.Value) bool {
	switch op {
	case query.OpEq:
		return model.Compare(l, r) == 0
	case query.OpNe:
		return model.Compare(l, r) != 0
	}
	if l.IsNull() || r.IsNull() {
		return false
	}
	c := model.Compare(l, r)
	switch op {
	case query.OpLt:
		return c < 0
	case query.OpLe:
		return c <= 0
	case query.OpGt:
		return c > 0
	case query.OpGe:
		return c >= 0
	default:
		return false
	}
}

// ---------------------------------------------------------------------
// Object-database source.

// OOSource exports a kimdb database into a federation.
type OOSource struct {
	db *core.DB
}

// NewOOSource wraps an object database.
func NewOOSource(db *core.DB) *OOSource { return &OOSource{db: db} }

// Classes implements Source.
func (s *OOSource) Classes() []string {
	var out []string
	for _, cl := range s.db.Catalog.Classes() {
		out = append(out, cl.Name)
	}
	return out
}

// Scan implements Source with hierarchy scope (a class exports its own
// and its subclasses' instances — the common model is the OO model).
func (s *OOSource) Scan(class string, fn func(Entity) bool) error {
	cl, err := s.db.Catalog.ClassByName(class)
	if err != nil {
		return err
	}
	classes, err := s.db.Catalog.Descendants(cl.ID)
	if err != nil {
		return err
	}
	for _, c := range classes {
		stop := false
		err := s.db.Store.ScanClass(c, func(_ model.OID, data []byte) bool {
			obj, derr := model.DecodeObject(data)
			if derr != nil {
				return true
			}
			if !fn(&ooEntity{src: s, obj: obj}) {
				stop = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// RunQuery implements QueryableSource: the query runs through the
// engine's planner and executor (index selection, hierarchy scope) in a
// fresh read transaction instead of the federation's per-entity
// evaluator. Engine errors decline the pushdown rather than failing the
// query: the engine is stricter than the lenient common model (an
// unknown attribute is an error there, a null here), and declining keeps
// the two paths semantically identical.
func (s *OOSource) RunQuery(q *query.Query) (*Result, bool, error) {
	tx := s.db.Begin()
	defer tx.Abort()
	eres, err := query.NewEngine(s.db).Run(tx, q.String())
	if err != nil {
		return nil, false, nil
	}
	res := &Result{Cols: eres.Cols, Rows: make([]Row, 0, len(eres.Rows))}
	for _, row := range eres.Rows {
		var ent Entity
		if row.Object != nil {
			ent = &ooEntity{src: s, obj: row.Object}
		}
		res.Rows = append(res.Rows, Row{Entity: ent, Values: row.Values})
	}
	return res, true, nil
}

type ooEntity struct {
	src *OOSource
	obj *model.Object
}

// Get resolves nested paths through object references.
func (e *ooEntity) Get(path []string) (model.Value, bool) {
	obj := e.obj
	for i, step := range path {
		a, err := e.src.db.Catalog.ResolveAttr(obj.Class(), step)
		if err != nil {
			return model.Null, false
		}
		v, ok := obj.Lookup(a.ID)
		if !ok {
			v = a.Default
		}
		if i == len(path)-1 {
			return v, true
		}
		oid, ok := v.AsRef()
		if !ok {
			return model.Null, true // null mid-path: value is null
		}
		next, err := e.src.db.FetchObject(oid)
		if err != nil {
			return model.Null, true
		}
		obj = next
	}
	return model.Null, false
}

// ---------------------------------------------------------------------
// Relational source.

// FK declares that a column of a relation references the key column of
// another relation — presented in the common model as an aggregation: a
// path step through the column continues inside the referenced tuple.
type FK struct {
	Relation string // referenced relation
	KeyCol   string // referenced key column
}

// RelSource exports a relational database into the federation.
type RelSource struct {
	db       *relational.DB
	fks      map[string]map[string]FK // relation -> column -> FK
	exported map[string]bool          // relations published as classes
}

// NewRelSource wraps a relational database.
func NewRelSource(db *relational.DB) *RelSource {
	return &RelSource{db: db, fks: make(map[string]map[string]FK)}
}

// DeclareFK registers a foreign key for path traversal.
func (s *RelSource) DeclareFK(relation, column string, fk FK) error {
	if _, err := s.db.Relation(relation); err != nil {
		return err
	}
	if _, err := s.db.Relation(fk.Relation); err != nil {
		return err
	}
	m := s.fks[relation]
	if m == nil {
		m = make(map[string]FK)
		s.fks[relation] = m
	}
	m[column] = fk
	return nil
}

// Classes implements Source: the relations published with Export appear
// as classes of the common model.
func (s *RelSource) Classes() []string {
	out := make([]string, 0, len(s.exported))
	for name := range s.exported {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Export publishes a relation as a class of the federation.
func (s *RelSource) Export(relation string) error {
	if _, err := s.db.Relation(relation); err != nil {
		return err
	}
	if s.exported == nil {
		s.exported = make(map[string]bool)
	}
	s.exported[relation] = true
	return nil
}

// Scan implements Source.
func (s *RelSource) Scan(class string, fn func(Entity) bool) error {
	if !s.exported[class] {
		return fmt.Errorf("%w: %q", ErrNoClass, class)
	}
	rel, err := s.db.Relation(class)
	if err != nil {
		return err
	}
	rel.Scan(func(row int, tuple []model.Value) bool {
		return fn(&relEntity{src: s, rel: rel, tuple: tuple})
	})
	return nil
}

type relEntity struct {
	src   *RelSource
	rel   *relational.Relation
	tuple []model.Value
}

// Get resolves a path: the first step is a column; further steps traverse
// declared foreign keys into referenced tuples.
func (e *relEntity) Get(path []string) (model.Value, bool) {
	rel, tuple := e.rel, e.tuple
	for i, step := range path {
		v, err := rel.Col(tuple, step)
		if err != nil {
			return model.Null, false
		}
		if i == len(path)-1 {
			return v, true
		}
		fk, ok := e.src.fks[rel.Name][step]
		if !ok {
			return model.Null, false // no FK: path cannot continue
		}
		target, err := e.src.db.Relation(fk.Relation)
		if err != nil {
			return model.Null, false
		}
		rows, err := target.SelectEq(fk.KeyCol, v)
		if err != nil || len(rows) == 0 {
			return model.Null, true // dangling FK: null
		}
		next, err := target.Get(rows[0])
		if err != nil {
			return model.Null, true
		}
		rel, tuple = target, next
	}
	return model.Null, false
}
