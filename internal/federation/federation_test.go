package federation

import (
	"errors"
	"testing"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/relational"
	"oodb/internal/schema"
)

// mixed builds the paper's §5.2 scenario: an Employee database in a
// relational system and a Company database in an object-oriented system,
// presented to the user under the common OO model.
func mixed(t *testing.T) *Federation {
	t.Helper()
	// Relational member: employees with a department foreign key.
	rdb := relational.NewDB()
	dept, _ := rdb.Create("Department", "id", "name", "city")
	emp, _ := rdb.Create("Employee", "id", "name", "dept", "salary")
	dept.Insert(model.String("d1"), model.String("Engineering"), model.String("Austin"))
	dept.Insert(model.String("d2"), model.String("Sales"), model.String("Detroit"))
	emp.Insert(model.String("e1"), model.String("alice"), model.String("d1"), model.Int(120))
	emp.Insert(model.String("e2"), model.String("bob"), model.String("d2"), model.Int(90))
	emp.Insert(model.String("e3"), model.String("carol"), model.String("d1"), model.Int(130))
	rs := NewRelSource(rdb)
	if err := rs.Export("Employee"); err != nil {
		t.Fatal(err)
	}
	if err := rs.Export("Department"); err != nil {
		t.Fatal(err)
	}
	if err := rs.DeclareFK("Employee", "dept", FK{Relation: "Department", KeyCol: "id"}); err != nil {
		t.Fatal(err)
	}

	// Object member: companies with a hierarchy.
	odb, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { odb.Close() })
	company, _ := odb.DefineClass("Company", nil,
		schema.AttrSpec{Name: "name", Domain: schema.ClassString},
		schema.AttrSpec{Name: "location", Domain: schema.ClassString})
	odb.DefineClass("AutoCompany", []model.ClassID{company.ID})
	odb.Do(func(tx *core.Tx) error {
		tx.Insert("AutoCompany", map[string]model.Value{
			"name": model.String("GM"), "location": model.String("Detroit")})
		tx.Insert("Company", map[string]model.Value{
			"name": model.String("MCC"), "location": model.String("Austin")})
		return nil
	})

	f := New()
	f.Register("hr", rs)
	f.Register("corp", NewOOSource(odb))
	return f
}

func TestSourcesListed(t *testing.T) {
	f := mixed(t)
	got := f.Sources()
	if len(got) != 2 || got[0] != "corp" || got[1] != "hr" {
		t.Fatalf("Sources = %v", got)
	}
}

func TestQueryRelationalMember(t *testing.T) {
	f := mixed(t)
	res, err := f.Query("hr", `SELECT name, salary FROM Employee WHERE salary > 100 ORDER BY salary DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if s, _ := res.Rows[0].Values[0].AsString(); s != "carol" {
		t.Errorf("first = %v", res.Rows[0].Values)
	}
}

func TestForeignKeyAsAggregation(t *testing.T) {
	// The relational FK is traversed like an OO nested attribute: the
	// same path syntax works on both members.
	f := mixed(t)
	res, err := f.Query("hr", `SELECT name, dept.city FROM Employee WHERE dept.name = 'Engineering'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // alice and carol
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if city, _ := row.Values[1].AsString(); city != "Austin" {
			t.Errorf("city = %v", row.Values[1])
		}
	}
}

func TestQueryObjectMember(t *testing.T) {
	f := mixed(t)
	res, err := f.Query("corp", `SELECT name FROM Company WHERE location = 'Detroit'`)
	if err != nil {
		t.Fatal(err)
	}
	// Hierarchy scope: GM is an AutoCompany but appears under Company.
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if s, _ := res.Rows[0].Values[0].AsString(); s != "GM" {
		t.Errorf("name = %v", res.Rows[0].Values[0])
	}
}

func TestSameQueryTextBothMembers(t *testing.T) {
	// The single-common-model illusion: identical query text runs against
	// either member (both export a name attribute).
	f := mixed(t)
	const q = `SELECT name FROM %s ORDER BY name LIMIT 1`
	r1, err := f.Query("hr", `SELECT name FROM Employee ORDER BY name LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.Query("corp", `SELECT name FROM Company ORDER BY name LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := r1.Rows[0].Values[0].AsString(); s != "alice" {
		t.Errorf("hr first = %v", r1.Rows[0].Values[0])
	}
	if s, _ := r2.Rows[0].Values[0].AsString(); s != "GM" {
		t.Errorf("corp first = %v", r2.Rows[0].Values[0])
	}
	_ = q
}

func TestErrors(t *testing.T) {
	f := mixed(t)
	if _, err := f.Query("nope", `SELECT * FROM X`); !errors.Is(err, ErrNoSource) {
		t.Errorf("expected ErrNoSource, got %v", err)
	}
	if _, err := f.Query("hr", `SELECT * FROM Nowhere`); !errors.Is(err, ErrNoClass) {
		t.Errorf("expected ErrNoClass, got %v", err)
	}
	if _, err := f.Query("hr", `garbage`); err == nil {
		t.Error("unparseable query accepted")
	}
	// Unexported relation invisible even though it exists.
	rs := NewRelSource(relational.NewDB())
	if err := rs.Export("ghost"); err == nil {
		t.Error("export of missing relation accepted")
	}
}

func TestDanglingFKIsNull(t *testing.T) {
	rdb := relational.NewDB()
	rdb.Create("Department", "id", "name")
	emp, _ := rdb.Create("Employee", "id", "dept")
	emp.Insert(model.String("e1"), model.String("dX")) // no such dept
	rs := NewRelSource(rdb)
	rs.Export("Employee")
	rs.DeclareFK("Employee", "dept", FK{Relation: "Department", KeyCol: "id"})
	f := New()
	f.Register("hr", rs)
	res, err := f.Query("hr", `SELECT id FROM Employee WHERE dept.name = 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatal("dangling FK matched a predicate")
	}
	// Null mid-path projects as null without error.
	res, err = f.Query("hr", `SELECT dept.name FROM Employee`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0].Values[0].IsNull() {
		t.Fatalf("dangling projection = %v", res.Rows[0].Values[0])
	}
}

func TestLimitWithoutOrder(t *testing.T) {
	f := mixed(t)
	res, err := f.Query("hr", `SELECT id FROM Employee LIMIT 2`)
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("rows = %d, %v", len(res.Rows), err)
	}
}

func TestOOSourceNestedPaths(t *testing.T) {
	// ooEntity.Get: nested dereference, null mid-path, default values,
	// unknown attribute.
	dir := t.TempDir()
	odb, err := core.Open(dir, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer odb.Close()
	dept, _ := odb.DefineClass("Dept", nil,
		schema.AttrSpec{Name: "city", Domain: schema.ClassString})
	emp, _ := odb.DefineClass("Emp", nil,
		schema.AttrSpec{Name: "name", Domain: schema.ClassString},
		schema.AttrSpec{Name: "dept", Domain: dept.ID},
		schema.AttrSpec{Name: "grade", Domain: schema.ClassString, Default: model.String("junior")})
	odb.Do(func(tx *core.Tx) error {
		d, _ := tx.InsertClass(dept.ID, map[string]model.Value{"city": model.String("Austin")})
		tx.InsertClass(emp.ID, map[string]model.Value{
			"name": model.String("alice"), "dept": model.Ref(d)})
		tx.InsertClass(emp.ID, map[string]model.Value{"name": model.String("bob")}) // no dept
		return nil
	})
	f := New()
	f.Register("oo", NewOOSource(odb))

	// Nested path through the reference.
	res, err := f.Query("oo", `SELECT name FROM Emp WHERE dept.city = 'Austin'`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("nested rows = %d, %v", len(res.Rows), err)
	}
	// Default value readable through the common model.
	res, err = f.Query("oo", `SELECT name FROM Emp WHERE grade = 'junior' ORDER BY name`)
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("default rows = %d, %v", len(res.Rows), err)
	}
	// Null mid-path is null, not an error.
	res, err = f.Query("oo", `SELECT dept.city FROM Emp WHERE name = 'bob'`)
	if err != nil || !res.Rows[0].Values[0].IsNull() {
		t.Fatalf("null mid-path = %v, %v", res.Rows[0].Values, err)
	}
	// Unknown attribute: false/null, no error (lenient heterogeneity).
	res, err = f.Query("oo", `SELECT * FROM Emp WHERE mystery = 1`)
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("unknown attr rows = %d, %v", len(res.Rows), err)
	}
	// Aggregates rejected in federation.
	if _, err := f.Query("oo", `SELECT COUNT(*) FROM Emp`); err == nil {
		t.Fatal("federated aggregate accepted")
	}
}
