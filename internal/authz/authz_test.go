package authz

import (
	"errors"
	"testing"

	"oodb/internal/model"
	"oodb/internal/schema"
)

// hier builds Vehicle <- Automobile <- DomesticAutomobile.
func hier(t *testing.T) (*schema.Catalog, model.ClassID, model.ClassID, model.ClassID) {
	t.Helper()
	cat := schema.NewCatalog()
	v, _ := cat.DefineClass("Vehicle", nil)
	a, _ := cat.DefineClass("Automobile", []model.ClassID{v.ID})
	d, _ := cat.DefineClass("DomesticAutomobile", []model.ClassID{a.ID})
	return cat, v.ID, a.ID, d.ID
}

func newAuth(t *testing.T) (*Authorizer, model.ClassID, model.ClassID, model.ClassID) {
	t.Helper()
	cat, v, a, d := hier(t)
	az := New(cat)
	for _, r := range []string{"admin", "engineer", "guest"} {
		az.AddRole(r)
	}
	if err := az.AddRoleEdge("admin", "engineer"); err != nil {
		t.Fatal(err)
	}
	if err := az.AddRoleEdge("engineer", "guest"); err != nil {
		t.Fatal(err)
	}
	return az, v, a, d
}

func TestClosedWorldDeniesByDefault(t *testing.T) {
	az, v, _, _ := newAuth(t)
	if az.Allowed("guest", Read, Class(v)) {
		t.Fatal("no grant, yet allowed")
	}
}

func TestClassGrantCoversInstances(t *testing.T) {
	az, v, _, _ := newAuth(t)
	az.Grant(Grant{Role: "guest", Type: Read, Object: Class(v)})
	if !az.Allowed("guest", Read, Class(v)) {
		t.Fatal("class read denied")
	}
	oid := model.MakeOID(v, 7)
	if !az.Allowed("guest", Read, Instance(oid)) {
		t.Fatal("instance read not implied by class grant")
	}
	// Write not implied by read.
	if az.Allowed("guest", Write, Instance(oid)) {
		t.Fatal("read grant allowed write")
	}
}

func TestWriteImpliesRead(t *testing.T) {
	az, v, _, _ := newAuth(t)
	az.Grant(Grant{Role: "guest", Type: Write, Object: Class(v)})
	if !az.Allowed("guest", Read, Class(v)) {
		t.Fatal("write grant should imply read")
	}
}

func TestRoleLatticeInheritance(t *testing.T) {
	az, v, _, _ := newAuth(t)
	az.Grant(Grant{Role: "guest", Type: Read, Object: Class(v)})
	// admin is above engineer above guest: both inherit the grant.
	if !az.Allowed("engineer", Read, Class(v)) {
		t.Fatal("engineer should inherit guest's grant")
	}
	if !az.Allowed("admin", Read, Class(v)) {
		t.Fatal("admin should inherit guest's grant")
	}
	// The reverse is false.
	az.Grant(Grant{Role: "admin", Type: Write, Object: Database()})
	if az.Allowed("guest", Write, Database()) {
		t.Fatal("guest inherited upward")
	}
}

func TestRoleCycleRejected(t *testing.T) {
	az, _, _, _ := newAuth(t)
	if err := az.AddRoleEdge("guest", "admin"); !errors.Is(err, ErrRoleCycle) {
		t.Fatalf("expected ErrRoleCycle, got %v", err)
	}
	if err := az.AddRoleEdge("nope", "guest"); !errors.Is(err, ErrNoSuchRole) {
		t.Fatalf("expected ErrNoSuchRole, got %v", err)
	}
}

func TestDeepClassGrantCoversSubclasses(t *testing.T) {
	az, v, a, d := newAuth(t)
	az.Grant(Grant{Role: "guest", Type: Read, Object: ClassDeep(v)})
	for _, c := range []model.ClassID{v, a, d} {
		if !az.Allowed("guest", Read, Class(c)) {
			t.Errorf("deep grant missed class %d", c)
		}
		if !az.Allowed("guest", Read, Instance(model.MakeOID(c, 1))) {
			t.Errorf("deep grant missed instance of class %d", c)
		}
	}
	// Shallow grant does not cover subclasses.
	az2, v2, a2, _ := newAuth(t)
	az2.Grant(Grant{Role: "guest", Type: Read, Object: Class(v2)})
	if az2.Allowed("guest", Read, Class(a2)) {
		t.Fatal("shallow class grant covered a subclass")
	}
}

func TestWeakNegativeOverridesGeneralPositive(t *testing.T) {
	az, v, _, _ := newAuth(t)
	oid := model.MakeOID(v, 3)
	az.Grant(Grant{Role: "guest", Type: Read, Object: Class(v)})
	az.Grant(Grant{Role: "guest", Type: Read, Object: Instance(oid), Negative: true})
	// The instance-level negative is more specific: that instance is
	// hidden, siblings stay visible.
	if az.Allowed("guest", Read, Instance(oid)) {
		t.Fatal("specific negative not applied")
	}
	if !az.Allowed("guest", Read, Instance(model.MakeOID(v, 4))) {
		t.Fatal("negative leaked to siblings")
	}
}

func TestWeakPositiveOverridesGeneralNegative(t *testing.T) {
	az, v, _, _ := newAuth(t)
	oid := model.MakeOID(v, 3)
	az.Grant(Grant{Role: "guest", Type: Read, Object: Class(v), Negative: true})
	az.Grant(Grant{Role: "guest", Type: Read, Object: Instance(oid)})
	if !az.Allowed("guest", Read, Instance(oid)) {
		t.Fatal("specific positive should override general negative")
	}
	if az.Allowed("guest", Read, Instance(model.MakeOID(v, 4))) {
		t.Fatal("general negative not applied to siblings")
	}
}

func TestNegativeBeatsPositiveAtEqualSpecificity(t *testing.T) {
	az, v, _, _ := newAuth(t)
	az.Grant(Grant{Role: "guest", Type: Read, Object: Class(v)})
	az.Grant(Grant{Role: "guest", Type: Read, Object: Class(v), Negative: true})
	if az.Allowed("guest", Read, Class(v)) {
		t.Fatal("tie should resolve to deny")
	}
}

func TestStrongNegativeCannotBeOverridden(t *testing.T) {
	az, v, _, _ := newAuth(t)
	oid := model.MakeOID(v, 3)
	az.Grant(Grant{Role: "guest", Type: Read, Object: Class(v), Negative: true, Strong: true})
	az.Grant(Grant{Role: "guest", Type: Read, Object: Instance(oid)})
	// A more specific weak positive cannot override the strong negative.
	if az.Allowed("guest", Read, Instance(oid)) {
		t.Fatal("weak positive overrode strong negative")
	}
}

func TestStrongConflictRejectedAtGrantTime(t *testing.T) {
	az, v, _, _ := newAuth(t)
	if err := az.Grant(Grant{Role: "guest", Type: Read, Object: Class(v), Strong: true}); err != nil {
		t.Fatal(err)
	}
	err := az.Grant(Grant{Role: "guest", Type: Read, Object: Instance(model.MakeOID(v, 1)), Negative: true, Strong: true})
	if !errors.Is(err, ErrStrongConflict) {
		t.Fatalf("expected ErrStrongConflict, got %v", err)
	}
	// A weak contradiction is fine (and loses to the strong grant).
	if err := az.Grant(Grant{Role: "guest", Type: Read, Object: Class(v), Negative: true}); err != nil {
		t.Fatal(err)
	}
	if !az.Allowed("guest", Read, Class(v)) {
		t.Fatal("strong positive should beat weak negative")
	}
}

func TestNegativeReadDeniesWrite(t *testing.T) {
	az, v, _, _ := newAuth(t)
	az.Grant(Grant{Role: "guest", Type: Write, Object: Class(v)})
	az.Grant(Grant{Role: "guest", Type: Read, Object: Class(v), Negative: true, Strong: true})
	// You cannot write what you may not read.
	if az.Allowed("guest", Write, Class(v)) {
		t.Fatal("write allowed despite read prohibition")
	}
}

func TestDatabaseGrant(t *testing.T) {
	az, v, a, _ := newAuth(t)
	az.Grant(Grant{Role: "admin", Type: Write, Object: Database()})
	for _, obj := range []Object{Database(), Class(v), Class(a), Instance(model.MakeOID(a, 1))} {
		if !az.Allowed("admin", Write, obj) {
			t.Errorf("database grant missed %v", obj)
		}
	}
}

func TestRevoke(t *testing.T) {
	az, v, _, _ := newAuth(t)
	az.Grant(Grant{Role: "guest", Type: Read, Object: Class(v)})
	if !az.Allowed("guest", Read, Class(v)) {
		t.Fatal("setup")
	}
	az.Revoke("guest", Read, Class(v), false)
	if az.Allowed("guest", Read, Class(v)) {
		t.Fatal("revoke ineffective")
	}
}

func TestUnknownRole(t *testing.T) {
	az, v, _, _ := newAuth(t)
	if err := az.Check("stranger", Read, Class(v)); !errors.Is(err, ErrNoSuchRole) {
		t.Fatalf("expected ErrNoSuchRole, got %v", err)
	}
	if err := az.Grant(Grant{Role: "stranger", Type: Read, Object: Class(v)}); !errors.Is(err, ErrNoSuchRole) {
		t.Fatalf("grant to unknown role: %v", err)
	}
}

func TestAttributeGranularity(t *testing.T) {
	az, v, a, _ := newAuth(t)
	// Class-wide read, but the salary attribute is hidden.
	az.Grant(Grant{Role: "guest", Type: Read, Object: ClassDeep(v)})
	az.Grant(Grant{Role: "guest", Type: Read, Object: Attribute(v, "salary"), Negative: true})
	if !az.Allowed("guest", Read, Instance(model.MakeOID(v, 1))) {
		t.Fatal("instance read denied")
	}
	if az.Allowed("guest", Read, Attribute(v, "salary")) {
		t.Fatal("hidden attribute readable")
	}
	if !az.Allowed("guest", Read, Attribute(v, "weight")) {
		t.Fatal("other attribute denied")
	}
	// The attribute negative follows inheritance into subclasses.
	if az.Allowed("guest", Read, Attribute(a, "salary")) {
		t.Fatal("inherited attribute readable in subclass")
	}
	// But an attribute grant on the subclass is more specific and wins.
	az.Grant(Grant{Role: "guest", Type: Read, Object: Attribute(a, "salary")})
	if !az.Allowed("guest", Read, Attribute(a, "salary")) {
		t.Fatal("subclass attribute override ignored")
	}
}

func TestAttributeGrantDoesNotLeakUpward(t *testing.T) {
	az, v, _, _ := newAuth(t)
	az.Grant(Grant{Role: "guest", Type: Read, Object: Attribute(v, "weight")})
	// Attribute access does not imply class or instance access.
	if az.Allowed("guest", Read, Class(v)) {
		t.Fatal("attribute grant covered the class")
	}
	if az.Allowed("guest", Read, Instance(model.MakeOID(v, 1))) {
		t.Fatal("attribute grant covered an instance")
	}
	if !az.Allowed("guest", Read, Attribute(v, "weight")) {
		t.Fatal("attribute itself denied")
	}
}

func TestDatabaseGrantCoversAttributes(t *testing.T) {
	az, v, _, _ := newAuth(t)
	az.Grant(Grant{Role: "admin", Type: Write, Object: Database()})
	if !az.Allowed("admin", Write, Attribute(v, "anything")) {
		t.Fatal("database grant missed attribute level")
	}
}
