// Package authz implements kimdb's authorization model after Rabitti,
// Bertino, Kim & Woelk ("A Model of Authorization for Next-Generation
// Database Systems", TODS 1990), the model the paper cites for the impact
// of object orientation on authorization (§3.2) and for extending
// authorization research (§5).
//
// Three lattices drive implicit authorization:
//
//   - a role lattice over subjects: a role implies every authorization
//     granted to roles beneath it;
//   - a granularity lattice over authorization objects: database → class →
//     instance, and class → attribute, with an optional "deep" class grant
//     that also covers the class's subclasses (the class-hierarchy
//     dimension unique to OODBs);
//   - an implication order over authorization types: Write implies Read.
//
// Grants are positive or negative, strong or weak. Strong grants cannot be
// overridden (a strong negative anywhere on an implication path denies);
// weak grants may be overridden by more specific weak or strong grants,
// with negative beating positive at equal specificity. Absent any
// applicable grant, access is denied (closed world).
package authz

import (
	"errors"
	"fmt"
	"sync"

	"oodb/internal/model"
	"oodb/internal/schema"
)

// AuthType is an authorization type.
type AuthType int

// The authorization types. Write implies Read.
const (
	Read AuthType = iota
	Write
)

func (t AuthType) String() string {
	if t == Write {
		return "write"
	}
	return "read"
}

// implies reports whether holding grant type g satisfies a request for r.
func (g AuthType) implies(r AuthType) bool { return g == r || (g == Write && r == Read) }

// Object is an authorization object: one node of the granularity lattice.
type Object struct {
	kind  objKind
	class model.ClassID
	oid   model.OID
	attr  string // attribute-level objects only
	deep  bool   // class grants only: cover subclasses too
}

type objKind int

const (
	objDatabase objKind = iota
	objClass
	objInstance
	objAttribute
)

// Database returns the whole-database authorization object.
func Database() Object { return Object{kind: objDatabase} }

// Class returns the authorization object for one class (its instances).
func Class(c model.ClassID) Object { return Object{kind: objClass, class: c} }

// ClassDeep returns the authorization object for a class and all its
// subclasses.
func ClassDeep(c model.ClassID) Object { return Object{kind: objClass, class: c, deep: true} }

// Instance returns the authorization object for one object.
func Instance(oid model.OID) Object { return Object{kind: objInstance, oid: oid} }

// Attribute returns the authorization object for one attribute of a class
// (and, via the class hierarchy, the same attribute inherited by its
// subclasses) — the finest granularity of the RBK lattice, what the paper
// calls protecting "the attributes and methods of a class".
func Attribute(class model.ClassID, attr string) Object {
	return Object{kind: objAttribute, class: class, attr: attr}
}

func (o Object) String() string {
	switch o.kind {
	case objDatabase:
		return "database"
	case objClass:
		if o.deep {
			return fmt.Sprintf("class*(%d)", o.class)
		}
		return fmt.Sprintf("class(%d)", o.class)
	case objAttribute:
		return fmt.Sprintf("attr(%d.%s)", o.class, o.attr)
	default:
		return fmt.Sprintf("instance(%s)", o.oid)
	}
}

// Grant is one authorization.
type Grant struct {
	Role     string
	Type     AuthType
	Object   Object
	Negative bool
	Strong   bool
}

// Errors of the authorization layer.
var (
	ErrNoSuchRole     = errors.New("authz: no such role")
	ErrRoleCycle      = errors.New("authz: role edge would create a cycle")
	ErrStrongConflict = errors.New("authz: contradicts an existing strong grant")
	ErrDenied         = errors.New("authz: access denied")

	// ErrNoGrant is the closed-world denial: no applicable grant exists.
	// It wraps ErrDenied; callers can distinguish "nothing grants this"
	// from "a negative grant denies this".
	ErrNoGrant = fmt.Errorf("%w: no applicable grant", ErrDenied)
)

// Authorizer holds the role lattice and grant base.
type Authorizer struct {
	mu     sync.RWMutex
	cat    *schema.Catalog
	under  map[string][]string // role -> roles directly beneath it
	roles  map[string]bool
	grants []Grant
}

// New returns an empty authorizer over the catalog (needed to interpret
// deep class grants against the class hierarchy).
func New(cat *schema.Catalog) *Authorizer {
	return &Authorizer{
		cat:   cat,
		under: make(map[string][]string),
		roles: make(map[string]bool),
	}
}

// AddRole defines a role.
func (a *Authorizer) AddRole(name string) {
	a.mu.Lock()
	a.roles[name] = true
	a.mu.Unlock()
}

// AddRoleEdge places weaker directly beneath stronger in the role lattice:
// stronger inherits weaker's authorizations.
func (a *Authorizer) AddRoleEdge(stronger, weaker string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.roles[stronger] {
		return fmt.Errorf("%w: %q", ErrNoSuchRole, stronger)
	}
	if !a.roles[weaker] {
		return fmt.Errorf("%w: %q", ErrNoSuchRole, weaker)
	}
	// Cycle check: stronger must not already be beneath weaker.
	if a.reachableLocked(weaker, stronger) {
		return fmt.Errorf("%w: %s -> %s", ErrRoleCycle, stronger, weaker)
	}
	a.under[stronger] = append(a.under[stronger], weaker)
	return nil
}

// reachableLocked reports whether to is beneath from.
func (a *Authorizer) reachableLocked(from, to string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{}
	stack := []string{from}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if r == to {
			return true
		}
		if seen[r] {
			continue
		}
		seen[r] = true
		stack = append(stack, a.under[r]...)
	}
	return false
}

// rolesOf returns role and every role beneath it.
func (a *Authorizer) rolesOf(role string) map[string]bool {
	out := map[string]bool{}
	stack := []string{role}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out[r] {
			continue
		}
		out[r] = true
		stack = append(stack, a.under[r]...)
	}
	return out
}

// Grant records an authorization. Granting a strong authorization that
// directly contradicts an existing strong grant (same role, overlapping
// object, overlapping type, opposite sign) is rejected — the grant-time
// consistency rule of the RBK model.
func (a *Authorizer) Grant(g Grant) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.roles[g.Role] {
		return fmt.Errorf("%w: %q", ErrNoSuchRole, g.Role)
	}
	if g.Strong {
		for _, ex := range a.grants {
			if !ex.Strong || ex.Negative == g.Negative || ex.Role != g.Role {
				continue
			}
			if a.objectsOverlapLocked(ex.Object, g.Object) && (ex.Type.implies(g.Type) || g.Type.implies(ex.Type)) {
				return fmt.Errorf("%w: %v vs %v", ErrStrongConflict, ex, g)
			}
		}
	}
	a.grants = append(a.grants, g)
	return nil
}

// Revoke removes every grant matching (role, type, object, negative).
func (a *Authorizer) Revoke(role string, t AuthType, obj Object, negative bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	kept := a.grants[:0]
	for _, g := range a.grants {
		if g.Role == role && g.Type == t && g.Object == obj && g.Negative == negative {
			continue
		}
		kept = append(kept, g)
	}
	a.grants = kept
}

// covers reports whether grant object g covers request object r, and at
// what specificity distance (0 = exact, larger = more general).
func (a *Authorizer) coversLocked(g, r Object) (bool, int) {
	switch g.kind {
	case objDatabase:
		return true, 3
	case objClass:
		var rc model.ClassID
		switch r.kind {
		case objClass:
			rc = r.class
		case objInstance:
			rc = r.oid.Class()
		case objAttribute:
			rc = r.class
		default:
			return false, 0
		}
		sub := 0
		if r.kind != objClass {
			sub = 1 // instance or attribute: one level finer
		}
		if g.class == rc {
			return true, sub
		}
		if g.deep && a.cat.IsSubclassOf(rc, g.class) {
			return true, sub + 1
		}
		return false, 0
	case objAttribute:
		if r.kind != objAttribute || g.attr != r.attr {
			return false, 0
		}
		if g.class == r.class {
			return true, 0
		}
		// An attribute grant on a class covers the inherited attribute in
		// its subclasses.
		if a.cat.IsSubclassOf(r.class, g.class) {
			return true, 1
		}
		return false, 0
	default: // instance grant
		if r.kind == objInstance && g.oid == r.oid {
			return true, 0
		}
		return false, 0
	}
}

// objectsOverlapLocked reports whether two grant objects can cover a
// common request (for strong-conflict detection).
func (a *Authorizer) objectsOverlapLocked(x, y Object) bool {
	if ok, _ := a.coversLocked(x, y); ok {
		return true
	}
	ok, _ := a.coversLocked(y, x)
	return ok
}

// Check decides whether role may perform t on obj.
func (a *Authorizer) Check(role string, t AuthType, obj Object) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if !a.roles[role] {
		return fmt.Errorf("%w: %q", ErrNoSuchRole, role)
	}
	roles := a.rolesOf(role)

	type hit struct {
		g    Grant
		dist int
	}
	var strongNeg, strongPos *hit
	var weakBest *hit
	for _, g := range a.grants {
		if !roles[g.Role] {
			continue
		}
		// A negative grant applies to a request its type is implied BY:
		// denying Read also denies Write (you cannot write what you may
		// not read); a positive grant applies when it implies the request.
		var typeApplies bool
		if g.Negative {
			typeApplies = t.implies(g.Type) || g.Type.implies(t)
		} else {
			typeApplies = g.Type.implies(t)
		}
		if !typeApplies {
			continue
		}
		ok, dist := a.coversLocked(g.Object, obj)
		if !ok {
			continue
		}
		h := hit{g: g, dist: dist}
		if g.Strong {
			if g.Negative {
				if strongNeg == nil || dist < strongNeg.dist {
					strongNeg = &h
				}
			} else if strongPos == nil || dist < strongPos.dist {
				strongPos = &h
			}
			continue
		}
		if weakBest == nil || dist < weakBest.dist ||
			(dist == weakBest.dist && g.Negative && !weakBest.g.Negative) {
			hcopy := h
			weakBest = &hcopy
		}
	}
	switch {
	case strongNeg != nil:
		return fmt.Errorf("%w: strong negative %v", ErrDenied, strongNeg.g.Object)
	case strongPos != nil:
		return nil
	case weakBest != nil && !weakBest.g.Negative:
		return nil
	case weakBest != nil:
		return fmt.Errorf("%w: negative grant on %v", ErrDenied, weakBest.g.Object)
	default:
		return ErrNoGrant
	}
}

// Allowed is Check as a boolean.
func (a *Authorizer) Allowed(role string, t AuthType, obj Object) bool {
	return a.Check(role, t, obj) == nil
}
