// Package composite implements composite objects per Kim, Bertino & Garza
// ("Composite Objects Revisited", SIGMOD 1989) — the part-of relationship
// the paper lists among the CAx data-modeling requirements (§3.3): a
// composite object is a root object plus the components reachable through
// composite (part-of) attributes.
//
// Semantics implemented:
//
//   - a reference attribute may be declared composite, optionally
//     exclusive: an exclusive component belongs to at most one parent;
//   - deleting a composite object propagates to dependent (exclusive)
//     components recursively;
//   - a composite object can be locked as a unit (the composite lock of
//     [KIM89c]): one call locks the root and every component;
//   - components can be re-clustered so a composite object's parts sit on
//     contiguous heap pages (the physical-clustering lever of §4.2,
//     measured in experiment E11).
//
// Like the version layer, composite semantics live above the engine:
// declarations are manager state persisted as ordinary objects, links are
// ordinary reference attributes, and all mutation happens inside ordinary
// transactions.
package composite

import (
	"errors"
	"fmt"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/schema"
)

// Errors of the composite layer.
var (
	ErrNotComposite = errors.New("composite: attribute is not declared composite")
	ErrAlreadyOwned = errors.New("composite: component already has an exclusive parent")
	ErrCycle        = errors.New("composite: attachment would create a part-of cycle")
)

// decl is one composite-attribute declaration.
type decl struct {
	class     model.ClassID
	attr      model.AttrID
	attrName  string
	exclusive bool
}

// declClassName persists declarations across reopen.
const declClassName = "CompositeDecl"

// Manager tracks composite declarations and implements composite
// operations over a database.
type Manager struct {
	db        *core.DB
	declClass *schema.Class
	decls     []decl
}

// New creates (or re-attaches) the composite layer.
func New(db *core.DB) (*Manager, error) {
	m := &Manager{db: db}
	cl, err := db.Catalog.ClassByName(declClassName)
	if errors.Is(err, schema.ErrNoSuchClass) {
		cl, err = db.DefineClass(declClassName, nil,
			schema.AttrSpec{Name: "class", Domain: schema.ClassInteger},
			schema.AttrSpec{Name: "attr", Domain: schema.ClassInteger},
			schema.AttrSpec{Name: "attrName", Domain: schema.ClassString},
			schema.AttrSpec{Name: "exclusive", Domain: schema.ClassBoolean},
		)
	}
	if err != nil {
		return nil, err
	}
	m.declClass = cl
	// Reload persisted declarations.
	err = db.Store.ScanClass(cl.ID, func(oid model.OID, data []byte) bool {
		obj, derr := model.DecodeObject(data)
		if derr != nil {
			return true
		}
		get := func(name string) model.Value {
			v, _ := db.AttrValue(obj, name)
			return v
		}
		c, _ := get("class").AsInt()
		a, _ := get("attr").AsInt()
		n, _ := get("attrName").AsString()
		x, _ := get("exclusive").AsBool()
		m.decls = append(m.decls, decl{
			class: model.ClassID(c), attr: model.AttrID(a), attrName: n, exclusive: x,
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// DeclareComposite marks an existing reference attribute of a class as a
// composite (part-of) link. The declaration is inherited: it applies to
// the class and all its subclasses.
func (m *Manager) DeclareComposite(class model.ClassID, attrName string, exclusive bool) error {
	a, err := m.db.Catalog.ResolveAttr(class, attrName)
	if err != nil {
		return err
	}
	if schema.IsPrimitive(a.Domain) {
		return fmt.Errorf("composite: attribute %q has primitive domain %d", attrName, a.Domain)
	}
	for _, d := range m.decls {
		if d.class == class && d.attr == a.ID {
			return fmt.Errorf("composite: %s.%s already declared", className(m.db, class), attrName)
		}
	}
	err = m.db.Do(func(tx *core.Tx) error {
		_, err := tx.InsertClass(m.declClass.ID, map[string]model.Value{
			"class":     model.Int(int64(class)),
			"attr":      model.Int(int64(a.ID)),
			"attrName":  model.String(attrName),
			"exclusive": model.Bool(exclusive),
		})
		return err
	})
	if err != nil {
		return err
	}
	m.decls = append(m.decls, decl{class: class, attr: a.ID, attrName: attrName, exclusive: exclusive})
	return nil
}

func className(db *core.DB, id model.ClassID) string {
	cl, err := db.Catalog.Class(id)
	if err != nil {
		return fmt.Sprintf("class(%d)", id)
	}
	return cl.Name
}

// compositeAttrs returns the composite declarations applying to class
// (declared on it or any ancestor).
func (m *Manager) compositeAttrs(class model.ClassID) []decl {
	var out []decl
	for _, d := range m.decls {
		if m.db.Catalog.IsSubclassOf(class, d.class) {
			out = append(out, d)
		}
	}
	return out
}

// Attach links child as a component of parent through the named composite
// attribute, enforcing exclusivity (an exclusive component may have only
// one parent) and acyclicity of the part-of graph.
func (m *Manager) Attach(tx *core.Tx, parent model.OID, attrName string, child model.OID) error {
	d, err := m.findDecl(parent.Class(), attrName)
	if err != nil {
		return err
	}
	if d.exclusive {
		owner, err := m.ownerOf(child, d)
		if err != nil {
			return err
		}
		if !owner.IsNil() && owner != parent {
			return fmt.Errorf("%w: %s owned by %s", ErrAlreadyOwned, child, owner)
		}
	}
	// Cycle check: parent must not be reachable from child via composite
	// links.
	reach, err := m.Components(child)
	if err != nil {
		return err
	}
	if child == parent {
		return ErrCycle
	}
	for _, c := range reach {
		if c == parent {
			return ErrCycle
		}
	}
	a, err := m.db.Catalog.ResolveAttr(parent.Class(), attrName)
	if err != nil {
		return err
	}
	obj, err := tx.Fetch(parent)
	if err != nil {
		return err
	}
	if a.SetValued {
		cur := obj.Get(a.ID)
		members, _ := cur.AsSet()
		next := append(append([]model.Value(nil), members...), model.Ref(child))
		return tx.Update(parent, map[string]model.Value{attrName: model.Set(next...)})
	}
	return tx.Update(parent, map[string]model.Value{attrName: model.Ref(child)})
}

// findDecl resolves a composite declaration for class.attrName.
func (m *Manager) findDecl(class model.ClassID, attrName string) (decl, error) {
	for _, d := range m.compositeAttrs(class) {
		if d.attrName == attrName {
			return d, nil
		}
	}
	return decl{}, fmt.Errorf("%w: %s.%s", ErrNotComposite, className(m.db, class), attrName)
}

// ownerOf finds the existing exclusive parent of child under declaration
// d (scan of the declaring class hierarchy — exclusivity checks are rare
// compared to reads).
func (m *Manager) ownerOf(child model.OID, d decl) (model.OID, error) {
	classes, err := m.db.Catalog.Descendants(d.class)
	if err != nil {
		return model.NilOID, err
	}
	var owner model.OID
	for _, c := range classes {
		err := m.db.Store.ScanClass(c, func(oid model.OID, data []byte) bool {
			obj, derr := model.DecodeObject(data)
			if derr != nil {
				return true
			}
			v := obj.Get(d.attr)
			if ref, ok := v.AsRef(); ok && ref == child {
				owner = oid
				return false
			}
			if members, ok := v.AsSet(); ok {
				for _, mem := range members {
					if ref, ok := mem.AsRef(); ok && ref == child {
						owner = oid
						return false
					}
				}
			}
			return true
		})
		if err != nil {
			return model.NilOID, err
		}
		if !owner.IsNil() {
			break
		}
	}
	return owner, nil
}

// refsOf extracts the object references out of an attribute value: the
// single target of a reference, or every reference member of a set.
func refsOf(v model.Value) []model.OID {
	if ref, ok := v.AsRef(); ok {
		return []model.OID{ref}
	}
	var out []model.OID
	if members, ok := v.AsSet(); ok {
		for _, mem := range members {
			if ref, ok := mem.AsRef(); ok {
				out = append(out, ref)
			}
		}
	}
	return out
}

// DirectComponents returns the objects directly referenced by oid through
// its composite attributes, in declaration order — one DFS step of
// Components. The compaction placement policy (internal/maint) uses it to
// drive its own traversal without materializing whole closures per root.
// A missing object yields nil, nil: dangling links are skipped, not
// errors.
func (m *Manager) DirectComponents(oid model.OID) ([]model.OID, error) {
	obj, err := m.db.FetchObject(oid)
	if err != nil {
		return nil, nil // dangling link: skip
	}
	var out []model.OID
	for _, d := range m.compositeAttrs(oid.Class()) {
		out = append(out, refsOf(obj.Get(d.attr))...)
	}
	return out, nil
}

// Components returns every component reachable from root through
// composite attributes, in DFS order (root excluded).
func (m *Manager) Components(root model.OID) ([]model.OID, error) {
	var out []model.OID
	seen := map[model.OID]bool{root: true}
	var walk func(oid model.OID) error
	walk = func(oid model.OID) error {
		refs, err := m.DirectComponents(oid)
		if err != nil {
			return err
		}
		for _, ref := range refs {
			if seen[ref] {
				continue
			}
			seen[ref] = true
			out = append(out, ref)
			if err := walk(ref); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return out, nil
}

// DeleteComposite deletes root and, recursively, every exclusive
// component (delete propagation; shared components survive).
func (m *Manager) DeleteComposite(tx *core.Tx, root model.OID) error {
	obj, err := m.db.FetchObject(root)
	if err != nil {
		return err
	}
	// Collect exclusive children before deleting the root.
	var children []model.OID
	for _, d := range m.compositeAttrs(root.Class()) {
		if !d.exclusive {
			continue
		}
		v := obj.Get(d.attr)
		if ref, ok := v.AsRef(); ok {
			children = append(children, ref)
		} else if members, ok := v.AsSet(); ok {
			for _, mem := range members {
				if ref, ok := mem.AsRef(); ok {
					children = append(children, ref)
				}
			}
		}
	}
	if err := tx.Delete(root); err != nil {
		return err
	}
	for _, c := range children {
		if _, err := m.db.FetchObject(c); err != nil {
			continue // already gone (diamond reached twice)
		}
		if err := m.DeleteComposite(tx, c); err != nil {
			return err
		}
	}
	return nil
}

// LockComposite locks the whole composite object as a unit: the root and
// every component, in the requested mode (read or write) — the composite
// lock of [KIM89c].
func (m *Manager) LockComposite(tx *core.Tx, root model.OID, write bool) error {
	comps, err := m.Components(root)
	if err != nil {
		return err
	}
	all := append([]model.OID{root}, comps...)
	for _, oid := range all {
		if write {
			if err := m.db.Locks.LockInstanceWrite(tx.ID(), oid); err != nil {
				return err
			}
		} else if err := m.db.Locks.LockInstanceRead(tx.ID(), oid); err != nil {
			return err
		}
	}
	return nil
}

// Recluster physically rewrites the composite object's components in DFS
// order so same-class components land on contiguous heap pages — the
// physical clustering of §4.2, measured in experiment E11. Returns the
// number of objects rewritten.
func (m *Manager) Recluster(tx *core.Tx, root model.OID) (int, error) {
	comps, err := m.Components(root)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, oid := range append([]model.OID{root}, comps...) {
		if err := tx.Rewrite(oid); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
