package composite

import (
	"errors"
	"testing"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/schema"
	"oodb/internal/txn"
)

// cadWorld models a small design hierarchy: Assembly has exclusive
// subassemblies (set-valued) and a shared standard part library reference.
type cadWorld struct {
	db       *core.DB
	cm       *Manager
	assembly *schema.Class
	part     *schema.Class
}

func newCADWorld(t *testing.T) *cadWorld {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	part, _ := db.DefineClass("Part", nil,
		schema.AttrSpec{Name: "name", Domain: schema.ClassString})
	assembly, err := db.DefineClass("Assembly", nil,
		schema.AttrSpec{Name: "name", Domain: schema.ClassString})
	if err != nil {
		t.Fatal(err)
	}
	// Self-referential subassemblies plus parts.
	db.AddAttribute(assembly.ID, schema.AttrSpec{Name: "subs", Domain: assembly.ID, SetValued: true})
	db.AddAttribute(assembly.ID, schema.AttrSpec{Name: "parts", Domain: part.ID, SetValued: true})
	db.AddAttribute(assembly.ID, schema.AttrSpec{Name: "library", Domain: part.ID})

	cm, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.DeclareComposite(assembly.ID, "subs", true); err != nil {
		t.Fatal(err)
	}
	if err := cm.DeclareComposite(assembly.ID, "parts", true); err != nil {
		t.Fatal(err)
	}
	// library is a plain (non-composite) reference on purpose.
	return &cadWorld{db: db, cm: cm, assembly: assembly, part: part}
}

func (w *cadWorld) newAssembly(t *testing.T, name string) model.OID {
	t.Helper()
	var oid model.OID
	err := w.db.Do(func(tx *core.Tx) error {
		var err error
		oid, err = tx.InsertClass(w.assembly.ID, map[string]model.Value{"name": model.String(name)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return oid
}

func (w *cadWorld) newPart(t *testing.T, name string) model.OID {
	t.Helper()
	var oid model.OID
	err := w.db.Do(func(tx *core.Tx) error {
		var err error
		oid, err = tx.InsertClass(w.part.ID, map[string]model.Value{"name": model.String(name)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return oid
}

func TestAttachAndComponents(t *testing.T) {
	w := newCADWorld(t)
	root := w.newAssembly(t, "engine")
	sub := w.newAssembly(t, "piston-bank")
	p1 := w.newPart(t, "piston")
	p2 := w.newPart(t, "ring")

	err := w.db.Do(func(tx *core.Tx) error {
		if err := w.cm.Attach(tx, root, "subs", sub); err != nil {
			return err
		}
		if err := w.cm.Attach(tx, sub, "parts", p1); err != nil {
			return err
		}
		return w.cm.Attach(tx, sub, "parts", p2)
	})
	if err != nil {
		t.Fatal(err)
	}
	comps, err := w.cm.Components(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
}

func TestExclusivityEnforced(t *testing.T) {
	w := newCADWorld(t)
	a := w.newAssembly(t, "a")
	b := w.newAssembly(t, "b")
	shared := w.newPart(t, "bolt")
	err := w.db.Do(func(tx *core.Tx) error {
		return w.cm.Attach(tx, a, "parts", shared)
	})
	if err != nil {
		t.Fatal(err)
	}
	err = w.db.Do(func(tx *core.Tx) error {
		return w.cm.Attach(tx, b, "parts", shared)
	})
	if !errors.Is(err, ErrAlreadyOwned) {
		t.Fatalf("expected ErrAlreadyOwned, got %v", err)
	}
	// Re-attaching to the same parent is fine (idempotent semantics).
	err = w.db.Do(func(tx *core.Tx) error {
		return w.cm.Attach(tx, a, "parts", shared)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCycleRejected(t *testing.T) {
	w := newCADWorld(t)
	a := w.newAssembly(t, "a")
	b := w.newAssembly(t, "b")
	w.db.Do(func(tx *core.Tx) error { return w.cm.Attach(tx, a, "subs", b) })
	err := w.db.Do(func(tx *core.Tx) error { return w.cm.Attach(tx, b, "subs", a) })
	if !errors.Is(err, ErrCycle) {
		t.Fatalf("expected ErrCycle, got %v", err)
	}
	err = w.db.Do(func(tx *core.Tx) error { return w.cm.Attach(tx, a, "subs", a) })
	if !errors.Is(err, ErrCycle) {
		t.Fatalf("self-attach: expected ErrCycle, got %v", err)
	}
}

func TestDeletePropagation(t *testing.T) {
	w := newCADWorld(t)
	root := w.newAssembly(t, "engine")
	sub := w.newAssembly(t, "bank")
	p := w.newPart(t, "piston")
	libPart := w.newPart(t, "standard-bolt")

	err := w.db.Do(func(tx *core.Tx) error {
		if err := w.cm.Attach(tx, root, "subs", sub); err != nil {
			return err
		}
		if err := w.cm.Attach(tx, sub, "parts", p); err != nil {
			return err
		}
		// Non-composite reference to a library part.
		return tx.Update(root, map[string]model.Value{"library": model.Ref(libPart)})
	})
	if err != nil {
		t.Fatal(err)
	}
	err = w.db.Do(func(tx *core.Tx) error {
		return w.cm.DeleteComposite(tx, root)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, oid := range []model.OID{root, sub, p} {
		if _, err := w.db.FetchObject(oid); err == nil {
			t.Errorf("component %v survived composite delete", oid)
		}
	}
	// The library part, referenced through a plain attribute, survives.
	if _, err := w.db.FetchObject(libPart); err != nil {
		t.Error("non-composite reference propagated delete")
	}
}

func TestNonExclusiveComponentsSurviveDelete(t *testing.T) {
	w := newCADWorld(t)
	// Declare a non-exclusive composite link on a fresh class.
	doc, _ := w.db.DefineClass("Document", nil,
		schema.AttrSpec{Name: "name", Domain: schema.ClassString})
	w.db.AddAttribute(doc.ID, schema.AttrSpec{Name: "figures", Domain: doc.ID, SetValued: true})
	if err := w.cm.DeclareComposite(doc.ID, "figures", false); err != nil {
		t.Fatal(err)
	}
	var d1, d2, fig model.OID
	w.db.Do(func(tx *core.Tx) error {
		d1, _ = tx.InsertClass(doc.ID, map[string]model.Value{"name": model.String("d1")})
		d2, _ = tx.InsertClass(doc.ID, map[string]model.Value{"name": model.String("d2")})
		fig, _ = tx.InsertClass(doc.ID, map[string]model.Value{"name": model.String("fig")})
		return nil
	})
	// Shared component: both documents reference the figure.
	err := w.db.Do(func(tx *core.Tx) error {
		if err := w.cm.Attach(tx, d1, "figures", fig); err != nil {
			return err
		}
		return w.cm.Attach(tx, d2, "figures", fig)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Deleting d1 must not delete the shared figure.
	w.db.Do(func(tx *core.Tx) error { return w.cm.DeleteComposite(tx, d1) })
	if _, err := w.db.FetchObject(fig); err != nil {
		t.Error("shared (non-exclusive) component deleted")
	}
}

func TestLockComposite(t *testing.T) {
	w := newCADWorld(t)
	root := w.newAssembly(t, "engine")
	sub := w.newAssembly(t, "bank")
	w.db.Do(func(tx *core.Tx) error { return w.cm.Attach(tx, root, "subs", sub) })

	tx := w.db.Begin()
	if err := w.cm.LockComposite(tx, root, true); err != nil {
		t.Fatal(err)
	}
	// Both root and component are X-locked.
	for _, oid := range []model.OID{root, sub} {
		if m, ok := w.db.Locks.Holding(tx.ID(), txn.InstanceRes(oid)); !ok || m != txn.X {
			t.Errorf("object %v mode = %v %v", oid, m, ok)
		}
	}
	tx.Commit()
}

func TestDeclarationsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	db, _ := core.Open(dir, core.Options{})
	asm, _ := db.DefineClass("Assembly", nil,
		schema.AttrSpec{Name: "name", Domain: schema.ClassString})
	db.AddAttribute(asm.ID, schema.AttrSpec{Name: "subs", Domain: asm.ID, SetValued: true})
	cm, _ := New(db)
	if err := cm.DeclareComposite(asm.ID, "subs", true); err != nil {
		t.Fatal(err)
	}
	var root, sub model.OID
	db.Do(func(tx *core.Tx) error {
		root, _ = tx.InsertClass(asm.ID, map[string]model.Value{"name": model.String("r")})
		sub, _ = tx.InsertClass(asm.ID, map[string]model.Value{"name": model.String("s")})
		return cm.Attach(tx, root, "subs", sub)
	})
	db.Close()

	db2, err := core.Open(dir, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	cm2, err := New(db2)
	if err != nil {
		t.Fatal(err)
	}
	comps, err := cm2.Components(root)
	if err != nil || len(comps) != 1 || comps[0] != sub {
		t.Fatalf("components after reopen = %v, %v", comps, err)
	}
	// Delete propagation still applies.
	db2.Do(func(tx *core.Tx) error { return cm2.DeleteComposite(tx, root) })
	if _, err := db2.FetchObject(sub); err == nil {
		t.Error("propagation lost after reopen")
	}
}

func TestDeclareCompositeValidation(t *testing.T) {
	w := newCADWorld(t)
	// Primitive-domain attribute cannot be composite.
	if err := w.cm.DeclareComposite(w.assembly.ID, "name", true); err == nil {
		t.Error("primitive attribute declared composite")
	}
	// Duplicate declaration rejected.
	if err := w.cm.DeclareComposite(w.assembly.ID, "subs", true); err == nil {
		t.Error("duplicate declaration accepted")
	}
	// Attach through a non-composite attribute rejected.
	a := w.newAssembly(t, "a")
	p := w.newPart(t, "p")
	err := w.db.Do(func(tx *core.Tx) error { return w.cm.Attach(tx, a, "library", p) })
	if !errors.Is(err, ErrNotComposite) {
		t.Errorf("expected ErrNotComposite, got %v", err)
	}
}

func TestReclusterRewritesComponents(t *testing.T) {
	w := newCADWorld(t)
	root := w.newAssembly(t, "engine")
	var parts []model.OID
	// Interleave part creation with unrelated inserts to scatter them.
	for i := 0; i < 10; i++ {
		p := w.newPart(t, "p")
		parts = append(parts, p)
		w.newPart(t, "noise")
	}
	w.db.Do(func(tx *core.Tx) error {
		for _, p := range parts {
			if err := w.cm.Attach(tx, root, "parts", p); err != nil {
				return err
			}
		}
		return nil
	})
	var n int
	err := w.db.Do(func(tx *core.Tx) error {
		var err error
		n, err = w.cm.Recluster(tx, root)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if n < 11 { // root + 10 parts
		t.Fatalf("reclustered %d objects", n)
	}
	// Objects still intact.
	comps, _ := w.cm.Components(root)
	if len(comps) != 10 {
		t.Fatalf("components after recluster = %d", len(comps))
	}
}
