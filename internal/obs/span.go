package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed node in an execution trace: it has a parent link,
// child spans, a start/stop pair and a set of named per-span counters.
// The query executor builds a span tree per traced query and renders it
// as the EXPLAIN ANALYZE annotation.
//
// Every method is safe to call on a nil *Span and does nothing — the
// executor threads a span through unconditionally and passes nil when the
// query is not being traced, so the untraced path pays only nil checks.
// A span's children may be created and finished from concurrent
// goroutines (the parallel hierarchy scan does exactly that); the
// counters and child list are guarded by the span's mutex.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	parent   *Span
	children []*Span
	counts   map[string]int64
}

// StartSpan begins a new root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child begins a sub-span. Returns nil if s is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), parent: s}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stops the span's clock. Subsequent Ends are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Add increments the named per-span counter by n.
func (s *Span) Add(key string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counts == nil {
		s.counts = make(map[string]int64)
	}
	s.counts[key] += n
	s.mu.Unlock()
}

// Set stores n as the named per-span counter.
func (s *Span) Set(key string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counts == nil {
		s.counts = make(map[string]int64)
	}
	s.counts[key] = n
	s.mu.Unlock()
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Parent returns the parent span (nil for a root or nil span).
func (s *Span) Parent() *Span {
	if s == nil {
		return nil
	}
	return s.parent
}

// Duration returns the measured duration; if the span has not Ended, the
// time elapsed so far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Count returns the value of a per-span counter (0 if unset or nil span).
func (s *Span) Count(key string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[key]
}

// Children returns a copy of the child list in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Render formats the span tree as indented text, one line per span:
//
//	name key=value key=value [duration]
//	  child ...
//
// Counter keys sort lexicographically so the output is stable.
func (s *Span) Render() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.render(&b, 0)
	return b.String()
}

func (s *Span) render(b *strings.Builder, depth int) {
	s.mu.Lock()
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	keys := make([]string, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.name)
	for _, k := range keys {
		fmt.Fprintf(b, " %s=%d", k, s.counts[k])
	}
	fmt.Fprintf(b, " [%s]\n", dur.Round(time.Microsecond))
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		c.render(b, depth+1)
	}
}
