// Package obs is kimdb's zero-dependency observability core: a
// process-wide registry of atomic, lock-striped counters, gauges and
// power-of-two-bucket histograms cheap enough for the page-fetch path,
// plus lightweight span tracing (span.go) used by the query executor for
// EXPLAIN ANALYZE.
//
// Design constraints (see DESIGN.md §Observability):
//
//   - A disabled metric costs one atomic load. An enabled counter costs
//     one atomic load plus one striped atomic add; an enabled histogram
//     costs one load plus three adds. No locks, no allocation, no map
//     lookups on the hot path: metrics are registered once as package
//     variables and updated through the returned pointer.
//   - Counters are striped across padded cells (one cache line each) so
//     concurrent writers on different cores do not ping-pong a line.
//   - Names follow the layer_subsystem_name convention — at least three
//     lowercase segments joined by underscores — enforced statically by
//     internal/obs/metricslint (the `make metrics-lint` step) and at
//     registration time by a panic.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// enabled is the global hot-path switch. Metrics default to on: the whole
// point of the striped design is that leaving them on is affordable.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns metric collection on or off process-wide. Disabled
// metrics cost a single atomic load per call site (benchmarked by
// BenchmarkObsOverhead in internal/storage).
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric collection is on.
func Enabled() bool { return enabled.Load() }

// numCells is the stripe width of a counter. Power of two.
const numCells = 8

// cell is one counter stripe, padded to a cache line.
type cell struct {
	v atomic.Uint64
	_ [56]byte
}

// stripeIdx picks a stripe for the calling goroutine. Goroutine stacks
// live at least a page apart, so the address of a local, shifted past the
// in-frame bits, is a cheap goroutine-stable hash. Collisions only cost
// sharing a cell — correctness never depends on the distribution.
func stripeIdx() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>10) & (numCells - 1)
}

// Counter is a monotonically increasing, lock-striped counter.
type Counter struct {
	name  string
	cells [numCells]cell
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	c.cells[stripeIdx()].v.Add(n)
}

// Value sums the stripes. Not a consistent snapshot under concurrent
// writers, like any set of independently read atomics; the error is at
// most the writes in flight during the read.
func (c *Counter) Value() uint64 {
	var sum uint64
	for i := range c.cells {
		sum += c.cells[i].v.Load()
	}
	return sum
}

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is a settable instantaneous value.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

// Histogram is a fixed-shape histogram with power-of-two buckets: bucket
// i counts observations v with bits.Len64(v) == i, i.e. bucket 0 holds 0
// and bucket i≥1 holds [2^(i-1), 2^i). Observing is three atomic adds;
// there is nothing to configure and nothing to allocate.
type Histogram struct {
	name    string
	buckets [65]atomic.Uint64 // bits.Len64 ∈ [0,64]
	sum     atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if !enabled.Load() {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the arithmetic mean of observations (0 if none).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-quantile (0 < q ≤ 1) as the upper bound of the
// bucket containing that rank. The estimate is exact to within one power
// of two — the resolution the bucket shape buys.
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(64)
}

// bucketUpper is the largest value bucket i can hold.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return (uint64(1) << i) - 1
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// Registry holds named metrics. Registration happens at package-init time
// through the returned typed pointers; the maps are never touched on a
// hot path.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry behind the package-level
// Register* functions.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// nameRE is the layer_subsystem_name convention: at least three lowercase
// alphanumeric segments joined by single underscores.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+){2,}$`)

// checkName panics on a malformed or duplicate name. Registration runs at
// package init, so a violation is a programming error surfaced at first
// test run (and statically by metricslint before that).
func (r *Registry) checkName(name string) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: metric %q violates the layer_subsystem_name convention", name))
	}
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("obs: duplicate metric registration %q", name))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("obs: duplicate metric registration %q", name))
	}
	if _, ok := r.histograms[name]; ok {
		panic(fmt.Sprintf("obs: duplicate metric registration %q", name))
	}
}

// RegisterCounter registers a counter in the registry.
func (r *Registry) RegisterCounter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name)
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// RegisterGauge registers a gauge in the registry.
func (r *Registry) RegisterGauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name)
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// RegisterHistogram registers a histogram in the registry.
func (r *Registry) RegisterHistogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name)
	h := &Histogram{name: name}
	r.histograms[name] = h
	return h
}

// RegisterCounter registers a counter in the default registry.
func RegisterCounter(name string) *Counter { return defaultRegistry.RegisterCounter(name) }

// RegisterGauge registers a gauge in the default registry.
func RegisterGauge(name string) *Gauge { return defaultRegistry.RegisterGauge(name) }

// RegisterHistogram registers a histogram in the default registry.
func RegisterHistogram(name string) *Histogram { return defaultRegistry.RegisterHistogram(name) }

// Bucket is one non-empty histogram bucket in a snapshot: N observations
// with value ≤ Le (and greater than the previous bucket's Le).
type Bucket struct {
	Le uint64 `json:"le"`
	N  uint64 `json:"n"`
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Mean    float64  `json:"mean"`
	P50     uint64   `json:"p50"`
	P90     uint64   `json:"p90"`
	P99     uint64   `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a frozen view of every registered metric, typed and
// JSON-serializable. Map iteration order is irrelevant; rendered forms
// sort by name.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry. Each metric is read atomically; the set
// as a whole is as consistent as independently read atomics can be.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Count: h.Count(),
			Sum:   h.Sum(),
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n > 0 {
				hs.Buckets = append(hs.Buckets, Bucket{Le: bucketUpper(i), N: n})
			}
		}
		s.Histograms[name] = hs
	}
	return s
}

// TakeSnapshot freezes the default registry.
func TakeSnapshot() Snapshot { return defaultRegistry.Snapshot() }

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
