// Command metricslint statically checks every obs.Register* call site in
// the repository: the metric name must be a string literal following the
// layer_subsystem_name convention (at least three lowercase segments
// joined by underscores), and no name may be registered twice anywhere in
// the tree. Run from the module root (`make metrics-lint`, part of
// `make verify`); exits non-zero with one line per violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+){2,}$`)

// registerFuncs are the registration entry points whose first argument is
// a metric name.
var registerFuncs = map[string]bool{
	"RegisterCounter":   true,
	"RegisterGauge":     true,
	"RegisterHistogram": true,
}

type site struct {
	pos  token.Position
	name string
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var sites []site
	var problems []string
	fset := token.NewFileSet()

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: parse error: %v", path, err))
			return nil
		}
		// The obs package itself (and this linter) define and test the
		// registration API; only consumers are linted.
		if file.Name.Name == "obs" || file.Name.Name == "main" && strings.Contains(path, "metricslint") {
			return nil
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registerFuncs[sel.Sel.Name] {
				return true
			}
			// Match both obs.RegisterX and registry.RegisterX.
			if len(call.Args) == 0 {
				return true
			}
			pos := fset.Position(call.Pos())
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				problems = append(problems, fmt.Sprintf(
					"%s: %s: metric name must be a string literal (lintable at build time)", pos, sel.Sel.Name))
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: unquote %s: %v", pos, lit.Value, err))
				return true
			}
			if !nameRE.MatchString(name) {
				problems = append(problems, fmt.Sprintf(
					"%s: metric %q violates layer_subsystem_name (≥3 lowercase segments)", pos, name))
			}
			sites = append(sites, site{pos: pos, name: name})
			return true
		})
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricslint: %v\n", err)
		os.Exit(2)
	}

	seen := make(map[string]token.Position)
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].pos.Filename != sites[j].pos.Filename {
			return sites[i].pos.Filename < sites[j].pos.Filename
		}
		return sites[i].pos.Offset < sites[j].pos.Offset
	})
	for _, s := range sites {
		if prev, dup := seen[s.name]; dup {
			problems = append(problems, fmt.Sprintf(
				"%s: metric %q already registered at %s", s.pos, s.name, prev))
			continue
		}
		seen[s.name] = s.pos
	}

	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "metricslint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("metricslint: %d registration site(s) clean\n", len(sites))
}
