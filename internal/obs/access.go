package obs

import (
	"sync/atomic"
)

// AccessTracker counts per-key access frequency cheaply enough for the
// object-fetch hot path — the signal behind heat-ordered placement in the
// compactor (internal/maint). It is a fixed-size open-addressed table of
// atomic slots: a Touch is one hash, at most a handful of atomic loads and
// one atomic add — the same no-lock, no-allocation discipline as the
// striped counters, so leaving it enabled holds the obs overhead bar
// (BenchmarkObsOverhead / BenchmarkAccessOverhead in internal/storage).
//
// The table is deliberately lossy at the edges: once every probe window
// for a key's hash is occupied by other keys, further distinct keys are
// dropped (counted by Drops) rather than grown into — heat placement is
// advisory, and a bounded, allocation-free hot path matters more than a
// perfect census. Existing keys keep counting regardless.
//
// Touch honors the process-wide SetEnabled switch: while metrics are off a
// Touch is one atomic load and nothing else. Accumulated counts survive
// off/on toggles — disabling pauses collection, it never discards what was
// already counted.
// There is deliberately no shared per-Touch total: a global counter would
// put one contended cache line on every fetch from every core. Touches()
// derives the total from the table instead.
type AccessTracker struct {
	slots []accessSlot
	mask  uint64
	drops atomic.Uint64
}

// accessSlot is one table entry. key holds key+1 so the zero value means
// empty; n is the access count.
type accessSlot struct {
	key atomic.Uint64
	n   atomic.Uint64
}

// defaultAccessSlots tracks up to 32Ki distinct keys (~512 KiB).
const defaultAccessSlots = 1 << 15

// accessProbes is the linear-probe window before a new key is dropped.
const accessProbes = 8

// NewAccessTracker returns a tracker with the default table size.
func NewAccessTracker() *AccessTracker { return NewAccessTrackerSize(defaultAccessSlots) }

// NewAccessTrackerSize returns a tracker with capacity for about n keys,
// rounded up to a power of two (minimum 16).
func NewAccessTrackerSize(n int) *AccessTracker {
	size := 16
	for size < n {
		size <<= 1
	}
	return &AccessTracker{slots: make([]accessSlot, size), mask: uint64(size - 1)}
}

// Touch records one access to key. No-op while metrics are disabled.
func (t *AccessTracker) Touch(key uint64) {
	if !enabled.Load() {
		return
	}
	h := key * 0x9e3779b97f4a7c15 // Fibonacci hash: OIDs are sequential per class
	h ^= h >> 29
	for i := uint64(0); i < accessProbes; i++ {
		s := &t.slots[(h+i)&t.mask]
		k := s.key.Load()
		if k == key+1 {
			s.n.Add(1)
			return
		}
		if k == 0 {
			if s.key.CompareAndSwap(0, key+1) || s.key.Load() == key+1 {
				s.n.Add(1)
				return
			}
			// Lost the race to a different key: fall through to the next
			// probe position.
		}
	}
	t.drops.Add(1)
}

// Counts returns a snapshot of every tracked key's count. Like any set of
// independently read atomics, the snapshot is consistent to within the
// touches in flight during the read.
func (t *AccessTracker) Counts() map[uint64]uint64 {
	out := make(map[uint64]uint64)
	for i := range t.slots {
		k := t.slots[i].key.Load()
		if k == 0 {
			continue
		}
		if n := t.slots[i].n.Load(); n > 0 {
			out[k-1] = n
		}
	}
	return out
}

// Tracked returns the number of distinct keys currently tracked.
func (t *AccessTracker) Tracked() int {
	n := 0
	for i := range t.slots {
		if t.slots[i].key.Load() != 0 {
			n++
		}
	}
	return n
}

// Touches returns the total number of recorded accesses (dropped keys
// included), derived as the sum of live counts plus drops — O(table),
// meant for metric snapshots, never the hot path.
func (t *AccessTracker) Touches() uint64 {
	total := t.drops.Load()
	for i := range t.slots {
		total += t.slots[i].n.Load()
	}
	return total
}

// Drops returns how many touches fell on keys the full table could not
// admit.
func (t *AccessTracker) Drops() uint64 { return t.drops.Load() }

// Reset clears every slot and the touch/drop totals — the decay step a
// caller runs after consuming the counts, so placement reflects recent
// heat rather than all history. Concurrent touches during a Reset may land
// before or after the wipe; either is a correct state.
func (t *AccessTracker) Reset() {
	for i := range t.slots {
		t.slots[i].n.Store(0)
		t.slots[i].key.Store(0)
	}
	t.drops.Store(0)
}
