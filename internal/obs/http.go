package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry snapshot as expvar-style JSON.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// NewMux returns an http.ServeMux exposing the registry at /metrics and
// the standard runtime profiler at /debug/pprof/. kimsh and kimbench
// mount this behind their -http flag; the engine itself never opens a
// socket.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
