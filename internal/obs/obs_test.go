package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.RegisterCounter("test_counter_adds")
	const workers, each = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
}

func TestDisabledMetricsAreInert(t *testing.T) {
	r := NewRegistry()
	c := r.RegisterCounter("test_disabled_counter")
	g := r.RegisterGauge("test_disabled_gauge")
	h := r.RegisterHistogram("test_disabled_hist")
	SetEnabled(false)
	defer SetEnabled(true)
	c.Add(5)
	g.Set(9)
	h.Observe(100)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled metrics recorded: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.RegisterHistogram("test_hist_quantiles")
	// 99 observations of 100 (bucket upper bound 127), one of 100000.
	for i := 0; i < 99; i++ {
		h.Observe(100)
	}
	h.Observe(100000)
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(0.50); got != 127 {
		t.Fatalf("p50 = %d, want 127", got)
	}
	p99 := h.Quantile(0.99)
	if p99 != 127 {
		t.Fatalf("p99 = %d, want 127 (rank 99 of 100 is still the low bucket)", p99)
	}
	p100 := h.Quantile(1.0)
	if p100 < 100000 {
		t.Fatalf("p100 = %d, want ≥ 100000", p100)
	}
	if mean := h.Mean(); mean < 1000 || mean > 1200 {
		t.Fatalf("mean = %f, want ≈ 1099", mean)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.RegisterHistogram("test_hist_edges")
	h.Observe(0)
	if got := h.Quantile(1.0); got != 0 {
		t.Fatalf("quantile of single zero = %d, want 0", got)
	}
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	if got := h.Quantile(1.0); got != 3 {
		t.Fatalf("max quantile = %d, want 3", got)
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	cases := []string{"twosegs_only", "Upper_case_name", "has space_x_y", "", "a__b_c"}
	for _, name := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q: expected panic", name)
				}
			}()
			NewRegistry().RegisterCounter(name)
		}()
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	r.RegisterCounter("dup_metric_name")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	r.RegisterHistogram("dup_metric_name") // cross-kind duplicates rejected too
}

func TestSnapshotAndHandler(t *testing.T) {
	r := NewRegistry()
	c := r.RegisterCounter("snap_counter_one")
	g := r.RegisterGauge("snap_gauge_one")
	h := r.RegisterHistogram("snap_hist_one")
	c.Add(7)
	g.Set(-3)
	h.Observe(10)
	h.Observe(20)

	s := r.Snapshot()
	if s.Counters["snap_counter_one"] != 7 {
		t.Fatalf("counter snapshot = %d", s.Counters["snap_counter_one"])
	}
	if s.Gauges["snap_gauge_one"] != -3 {
		t.Fatalf("gauge snapshot = %d", s.Gauges["snap_gauge_one"])
	}
	hs := s.Histograms["snap_hist_one"]
	if hs.Count != 2 || hs.Sum != 30 || hs.Mean != 15 {
		t.Fatalf("hist snapshot = %+v", hs)
	}

	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var decoded Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("handler JSON: %v", err)
	}
	if decoded.Counters["snap_counter_one"] != 7 {
		t.Fatalf("handler counter = %d", decoded.Counters["snap_counter_one"])
	}

	names := r.Names()
	if len(names) != 3 || names[0] != "snap_counter_one" {
		t.Fatalf("names = %v", names)
	}
}

func TestSpanTree(t *testing.T) {
	root := StartSpan("query")
	root.Add("rows", 10)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child("scan")
			c.Add("rows_scanned", 25)
			c.End()
		}()
	}
	wg.Wait()
	root.End()

	if root.Count("rows") != 10 {
		t.Fatalf("root counter = %d", root.Count("rows"))
	}
	kids := root.Children()
	if len(kids) != 4 {
		t.Fatalf("children = %d, want 4", len(kids))
	}
	for _, k := range kids {
		if k.Parent() != root {
			t.Fatal("child parent link broken")
		}
		if k.Count("rows_scanned") != 25 {
			t.Fatalf("child counter = %d", k.Count("rows_scanned"))
		}
	}
	out := root.Render()
	if !strings.Contains(out, "query rows=10") || strings.Count(out, "scan rows_scanned=25") != 4 {
		t.Fatalf("render:\n%s", out)
	}
	if root.Duration() <= 0 {
		t.Fatal("duration not recorded")
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatal("nil span Child must return nil")
	}
	s.Add("k", 1)
	s.Set("k", 2)
	s.End()
	if s.Render() != "" || s.Duration() != 0 || s.Count("k") != 0 || s.Name() != "" || s.Parent() != nil || s.Children() != nil {
		t.Fatal("nil span leaked state")
	}
}

func TestSpanDurationBeforeEnd(t *testing.T) {
	s := StartSpan("live")
	time.Sleep(time.Millisecond)
	if s.Duration() <= 0 {
		t.Fatal("live span duration should be positive")
	}
	s.End()
	d := s.Duration()
	time.Sleep(time.Millisecond)
	if s.Duration() != d {
		t.Fatal("ended span duration must be frozen")
	}
}
