package obs

// Minimal event log for rare, operationally significant conditions the
// metrics alone cannot explain: fail-stop latches, failed auto-checkpoints,
// recovery anomalies. This is deliberately not a logging framework — one
// line per event, timestamped, to a swappable writer (default stderr) —
// because the hot paths must stay allocation-free and the engine has no
// business buffering telemetry it may be crashing under.

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

var (
	logMu sync.Mutex
	logW  io.Writer = os.Stderr
)

// SetLogWriter redirects event-log output (tests capture it; servers tee
// it). Returns the previous writer so callers can restore it.
func SetLogWriter(w io.Writer) io.Writer {
	logMu.Lock()
	defer logMu.Unlock()
	prev := logW
	logW = w
	return prev
}

// Logf emits one timestamped event line. Callers prefix the message with
// their layer ("core: ...", "wal: ..."), mirroring the metric naming
// convention.
func Logf(format string, args ...any) {
	logMu.Lock()
	defer logMu.Unlock()
	fmt.Fprintf(logW, "%s "+format+"\n",
		append([]any{time.Now().UTC().Format(time.RFC3339Nano)}, args...)...)
}
