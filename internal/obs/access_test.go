package obs

import (
	"sync"
	"testing"
)

// TestAccessTrackerCounts pins the basic contract: counts accumulate per
// key, unknown keys read as absent, and totals add up.
func TestAccessTrackerCounts(t *testing.T) {
	tr := NewAccessTrackerSize(64)
	for i := 0; i < 5; i++ {
		tr.Touch(7)
	}
	tr.Touch(9)
	counts := tr.Counts()
	if counts[7] != 5 || counts[9] != 1 {
		t.Fatalf("counts = %v, want 7:5 9:1", counts)
	}
	if _, ok := counts[8]; ok {
		t.Fatal("untouched key appeared in counts")
	}
	if tr.Touches() != 6 {
		t.Fatalf("touches = %d, want 6", tr.Touches())
	}
	if tr.Tracked() != 2 {
		t.Fatalf("tracked = %d, want 2", tr.Tracked())
	}
	tr.Reset()
	if len(tr.Counts()) != 0 || tr.Touches() != 0 {
		t.Fatalf("reset left state: counts=%v touches=%d", tr.Counts(), tr.Touches())
	}
}

// TestAccessTrackerSurvivesDisable pins the toggle contract: disabling
// metrics pauses counting without discarding accumulated counts, and
// re-enabling resumes on the same totals.
func TestAccessTrackerSurvivesDisable(t *testing.T) {
	defer SetEnabled(true)
	tr := NewAccessTrackerSize(64)
	tr.Touch(1)
	tr.Touch(1)

	SetEnabled(false)
	tr.Touch(1)
	tr.Touch(2)
	if got := tr.Counts()[1]; got != 2 {
		t.Fatalf("count changed while disabled: %d, want 2", got)
	}
	if _, ok := tr.Counts()[2]; ok {
		t.Fatal("new key admitted while disabled")
	}

	SetEnabled(true)
	tr.Touch(1)
	if got := tr.Counts()[1]; got != 3 {
		t.Fatalf("count after re-enable = %d, want 3 (2 preserved + 1 new)", got)
	}
}

// TestAccessTrackerOverflowDrops fills a tiny table past capacity and
// verifies the overflow is dropped and counted, while established keys
// keep counting.
func TestAccessTrackerOverflowDrops(t *testing.T) {
	tr := NewAccessTrackerSize(16) // 16 slots
	for k := uint64(0); k < 200; k++ {
		tr.Touch(k)
	}
	if tr.Drops() == 0 {
		t.Fatal("200 distinct keys into 16 slots produced no drops")
	}
	if tr.Tracked() != 16 {
		t.Fatalf("tracked = %d, want full table (16)", tr.Tracked())
	}
	// A key that made it in keeps counting even with the table full.
	counts := tr.Counts()
	var admitted uint64
	for k := range counts {
		admitted = k
		break
	}
	before := counts[admitted]
	tr.Touch(admitted)
	if got := tr.Counts()[admitted]; got != before+1 {
		t.Fatalf("admitted key stopped counting at table-full: %d -> %d", before, got)
	}
}

// TestAccessTrackerConcurrent hammers the tracker from many goroutines
// (meaningful under -race) and verifies no touch is lost when the table
// has room: the sum of counts plus drops equals the touches.
func TestAccessTrackerConcurrent(t *testing.T) {
	tr := NewAccessTrackerSize(1 << 10)
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Touch(uint64(i % 100)) // 100 hot keys, heavy collisions on slots
			}
		}(w)
	}
	wg.Wait()
	var sum uint64
	for _, n := range tr.Counts() {
		sum += n
	}
	if total := sum + tr.Drops(); total != workers*perWorker {
		t.Fatalf("counts(%d)+drops(%d) = %d, want %d", sum, tr.Drops(), total, workers*perWorker)
	}
}
