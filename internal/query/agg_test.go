package query

import (
	"testing"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/schema"
)

func aggRow(t *testing.T, f *figure1, src string) []model.Value {
	t.Helper()
	tx := f.db.Begin()
	defer tx.Commit()
	res, err := f.eng.Run(tx, src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%s: %d rows, want 1", src, len(res.Rows))
	}
	return res.Rows[0].Values
}

func TestCountStar(t *testing.T) {
	f := newFigure1(t)
	vals := aggRow(t, f, `SELECT COUNT(*) FROM Vehicle`)
	if n, _ := vals[0].AsInt(); n != 6 {
		t.Fatalf("COUNT(*) = %v", vals[0])
	}
	vals = aggRow(t, f, `SELECT COUNT(*) FROM ONLY Vehicle`)
	if n, _ := vals[0].AsInt(); n != 1 {
		t.Fatalf("COUNT(*) ONLY = %v", vals[0])
	}
	vals = aggRow(t, f, `SELECT COUNT(*) FROM Vehicle WHERE weight > 7500`)
	if n, _ := vals[0].AsInt(); n != 3 {
		t.Fatalf("filtered COUNT(*) = %v", vals[0])
	}
}

func TestAggregateFunctions(t *testing.T) {
	f := newFigure1(t)
	vals := aggRow(t, f, `SELECT MIN(weight), MAX(weight), SUM(weight), AVG(weight), COUNT(weight) FROM Vehicle`)
	if n, _ := vals[0].AsInt(); n != 3000 {
		t.Errorf("MIN = %v", vals[0])
	}
	if n, _ := vals[1].AsInt(); n != 9000 {
		t.Errorf("MAX = %v", vals[1])
	}
	if n, _ := vals[2].AsInt(); n != 39600 { // 5000+3000+8000+7600+9000+7000
		t.Errorf("SUM = %v", vals[2])
	}
	if a, _ := vals[3].AsFloat(); a != 6600 {
		t.Errorf("AVG = %v", vals[3])
	}
	if n, _ := vals[4].AsInt(); n != 6 {
		t.Errorf("COUNT(weight) = %v", vals[4])
	}
}

func TestAggregateOverNestedPath(t *testing.T) {
	f := newFigure1(t)
	vals := aggRow(t, f, `SELECT MIN(manufacturer.location), MAX(manufacturer.location) FROM Vehicle`)
	if s, _ := vals[0].AsString(); s != "Detroit" {
		t.Errorf("MIN location = %v", vals[0])
	}
	if s, _ := vals[1].AsString(); s != "Toyota City" {
		t.Errorf("MAX location = %v", vals[1])
	}
}

func TestAggregateSkipsNulls(t *testing.T) {
	f := newFigure1(t)
	f.db.Do(func(tx *core.Tx) error {
		_, err := tx.Insert("Vehicle", map[string]model.Value{"id": model.String("noweight")})
		return err
	})
	vals := aggRow(t, f, `SELECT COUNT(*), COUNT(weight) FROM Vehicle`)
	if n, _ := vals[0].AsInt(); n != 7 {
		t.Errorf("COUNT(*) = %v", vals[0])
	}
	if n, _ := vals[1].AsInt(); n != 6 {
		t.Errorf("COUNT(weight) = %v", vals[1])
	}
	// AVG of nothing is null.
	vals = aggRow(t, f, `SELECT AVG(weight) FROM Vehicle WHERE weight > 99999`)
	if !vals[0].IsNull() {
		t.Errorf("AVG over empty = %v", vals[0])
	}
}

func TestAggregateUsesIndexAccessPath(t *testing.T) {
	f := newFigure1(t)
	vehicle, _ := f.db.Catalog.ClassByName("Vehicle")
	f.db.CreateIndex("vw", vehicle.ID, []string{"weight"}, true)
	plan, err := f.eng.PlanQuery(mustParse(t, `SELECT COUNT(*) FROM Vehicle WHERE weight = 7000`))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.IndexUsed() {
		t.Fatalf("aggregate plan = %s", plan)
	}
	vals := aggRow(t, f, `SELECT COUNT(*) FROM Vehicle WHERE weight = 7000`)
	if n, _ := vals[0].AsInt(); n != 1 {
		t.Fatalf("indexed COUNT = %v", vals[0])
	}
}

func TestAggregateErrors(t *testing.T) {
	f := newFigure1(t)
	tx := f.db.Begin()
	defer tx.Commit()
	for _, src := range []string{
		`SELECT SUM(*) FROM Vehicle`,
		`SELECT SUM(id) FROM Vehicle`, // string attr
		`SELECT COUNT(nosuch) FROM Vehicle`,
		`SELECT COUNT( FROM Vehicle`,
	} {
		if _, err := f.eng.Run(tx, src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestCountAsPlainIdentifierStillWorks(t *testing.T) {
	// An attribute named "count" is not hijacked by the aggregate grammar
	// when not followed by '('.
	db, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.DefineClass("Stat", nil, schema.AttrSpec{Name: "count", Domain: schema.ClassInteger})
	db.Do(func(tx *core.Tx) error {
		_, err := tx.Insert("Stat", map[string]model.Value{"count": model.Int(5)})
		return err
	})
	eng := NewEngine(db)
	tx := db.Begin()
	defer tx.Commit()
	res, err := eng.Run(tx, `SELECT count FROM Stat WHERE count = 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestAggregateCanonicalString(t *testing.T) {
	q := mustParse(t, `SELECT COUNT(*), AVG(weight) FROM Vehicle WHERE weight > 5`)
	q2 := mustParse(t, q.String())
	if q.String() != q2.String() {
		t.Fatalf("round trip: %q != %q", q.String(), q2.String())
	}
}

func TestMethodMidPath(t *testing.T) {
	// A method step in the middle of a path: bestPlant() returns a
	// reference that the next step dereferences.
	f := newFigure1(t)
	company, _ := f.db.Catalog.ClassByName("Company")
	division, _ := f.db.DefineClass("Division", nil,
		schema.AttrSpec{Name: "city", Domain: schema.ClassString})
	var austinPlant model.OID
	f.db.Do(func(tx *core.Tx) error {
		var err error
		austinPlant, err = tx.InsertClass(division.ID, map[string]model.Value{
			"city": model.String("Austin")})
		return err
	})
	err := f.db.AddMethod(company.ID, "bestPlant", func(eng schema.MethodEngine, recv *model.Object, _ []model.Value) (model.Value, error) {
		return model.Ref(austinPlant), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := f.run(t, `SELECT * FROM Vehicle WHERE manufacturer.bestPlant.city = 'Austin'`)
	// Every vehicle with a manufacturer qualifies (the method is constant).
	wantSet(t, got, "v1", "a1", "a2", "d1", "t1", "t2")
}
