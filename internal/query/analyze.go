package query

import (
	"fmt"
	"strings"
	"time"

	"oodb/internal/core"
	"oodb/internal/obs"
)

// ExplainAnalyze parses, plans and EXECUTES src inside tx, returning the
// plan annotated with per-stage execution statistics: per-class rows
// scanned and matched, index probe counts, parallel fan-out width, sort /
// aggregate / projection timings, and the buffer pool hits and misses the
// query incurred.
//
// The buffer figures come from the process-wide pool counters sampled
// before and after execution, so concurrent activity on other connections
// can inflate them; on an otherwise quiet database they are exact.
func (e *Engine) ExplainAnalyze(tx *core.Tx, src string) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	p, err := e.PlanQuery(q)
	if err != nil {
		return "", err
	}
	hits0, misses0 := e.db.Store.PoolStats()
	span := obs.StartSpan("query")
	t0 := time.Now()
	res, err := e.execute(tx, p, span)
	elapsed := time.Since(t0)
	span.End()
	if err != nil {
		return "", err
	}
	hits1, misses1 := e.db.Store.PoolStats()
	dh, dm := hits1-hits0, misses1-misses0

	var b strings.Builder
	b.WriteString(p.String())
	b.WriteByte('\n')
	if p.HasEst {
		// Estimated next to actual: the at-a-glance check on whether the
		// maintenance statistics still describe the data.
		fmt.Fprintf(&b, "rows=%d est=%.1f time=%s\n", len(res.Rows), p.EstRows, elapsed.Round(time.Microsecond))
	} else {
		fmt.Fprintf(&b, "rows=%d time=%s\n", len(res.Rows), elapsed.Round(time.Microsecond))
	}
	var ratio float64
	if dh+dm > 0 {
		ratio = float64(dh) / float64(dh+dm)
	}
	fmt.Fprintf(&b, "buffer: hits=%d misses=%d hit_ratio=%.2f\n", dh, dm, ratio)
	b.WriteString(span.Render())
	return b.String(), nil
}
