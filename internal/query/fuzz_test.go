package query

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics throws random token soup at the parser: every
// input must either parse or return an error — never panic, never hang.
func TestParserNeverPanics(t *testing.T) {
	vocab := []string{
		"SELECT", "FROM", "WHERE", "ONLY", "AND", "OR", "NOT", "IN",
		"CONTAINS", "ORDER", "BY", "ASC", "DESC", "LIMIT", "COUNT", "SUM",
		"AVG", "MIN", "MAX", "*", "(", ")", ",", ".", "=", "!=", "<", "<=",
		">", ">=", "<>", "Vehicle", "weight", "manufacturer", "location",
		"42", "3.14", "-7", "'Detroit'", `"x"`, "true", "false", "null",
		"''", "'unterminated", "\x00", "日本語", "_id",
	}
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 5000; i++ {
		n := r.Intn(15)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = vocab[r.Intn(len(vocab))]
		}
		src := strings.Join(parts, " ")
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on %q: %v", src, p)
				}
			}()
			q, err := Parse(src)
			if err == nil && q != nil {
				// Canonical form must itself re-parse.
				if _, err2 := Parse(q.String()); err2 != nil {
					t.Fatalf("canonical form of %q unparseable: %q: %v", src, q.String(), err2)
				}
			}
		}()
	}
}

// TestLexerNeverPanics covers raw byte soup (invalid UTF-8 included).
func TestLexerNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, r.Intn(40))
		r.Read(buf)
		src := string(buf)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on %x: %v", buf, p)
				}
			}()
			Parse(src)
		}()
	}
}
