package query

import (
	"fmt"
	"strings"

	"oodb/internal/core"
	"oodb/internal/index"
	"oodb/internal/model"
	"oodb/internal/schema"
)

// Engine plans and executes queries against a database.
type Engine struct {
	db *core.DB
	// ForceScan disables index selection (the optimizer-ablation switch of
	// experiment E8).
	ForceScan bool
	// SerialScan disables the parallel fan-out over a class-hierarchy
	// scope, scanning one class at a time (the concurrency-ablation switch
	// of experiment E13; results are identical either way).
	SerialScan bool
	// Views resolves a FROM name that is not a class to a view's query
	// source ("a query may be issued against views just as though they
	// were relations", Kim §5.4). Wired by the view manager.
	Views func(name string) (src string, ok bool)
}

// NewEngine returns a query engine over db.
func NewEngine(db *core.DB) *Engine { return &Engine{db: db} }

// accessKind enumerates the planner's access paths.
type accessKind int

const (
	accessScan     accessKind = iota // heap-scan every class in scope
	accessIndexEq                    // single index, equality probe
	accessIndexRng                   // single index, range scan
	accessUnionEq                    // one SC index per scope class, equality
	accessUnionRng                   // one SC index per scope class, range
)

// Plan is a compiled query: scope, access path and residual predicate.
type Plan struct {
	Query   *Query
	Target  *schema.Class
	Scope   []model.ClassID // classes whose instances the query ranges over
	kind    accessKind
	indexes []*index.Index // 1 for single-index plans, per-class for unions
	probe   model.Value    // equality key
	lo, hi  model.Value    // range bounds (inclusive lo, hi per hiInc)
	hiInc   bool

	// EstRows is the statistics-based result cardinality estimate; HasEst
	// reports whether statistics covered the whole scope (see selectivity.go).
	EstRows float64
	HasEst  bool
}

// String renders the plan for EXPLAIN output and the ablation tests.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scope=%s(%d classes) ", p.Target.Name, len(p.Scope))
	switch p.kind {
	case accessScan:
		sb.WriteString("access=heap-scan")
	case accessIndexEq:
		fmt.Fprintf(&sb, "access=index-eq(%s)", p.indexes[0].Name)
	case accessIndexRng:
		fmt.Fprintf(&sb, "access=index-range(%s)", p.indexes[0].Name)
	case accessUnionEq:
		fmt.Fprintf(&sb, "access=index-union-eq(%d indexes)", len(p.indexes))
	case accessUnionRng:
		fmt.Fprintf(&sb, "access=index-union-range(%d indexes)", len(p.indexes))
	}
	if p.HasEst {
		fmt.Fprintf(&sb, " est_rows=%.1f", p.EstRows)
	}
	if p.Query.Where != nil {
		fmt.Fprintf(&sb, " residual=%s", p.Query.Where.exprString())
	}
	return sb.String()
}

// IndexUsed reports whether the plan uses any index (tests).
func (p *Plan) IndexUsed() bool { return p.kind != accessScan }

// PlanQuery resolves names and picks an access path. A FROM name that is
// not a class resolves through the view resolver: the view's query is
// merged with the outer query (predicates conjoined, outer projection
// winning) and planned against the view's target class.
func (e *Engine) PlanQuery(q *Query) (*Plan, error) {
	return e.planQuery(q, 0)
}

func (e *Engine) planQuery(q *Query, viewDepth int) (*Plan, error) {
	cl, err := e.db.Catalog.ClassByName(q.From)
	if err != nil {
		if e.Views != nil {
			if src, ok := e.Views(q.From); ok {
				if viewDepth >= 8 {
					return nil, fmt.Errorf("query: view expansion too deep at %q (cyclic view definition?)", q.From)
				}
				merged, verr := e.mergeView(q, src)
				if verr != nil {
					return nil, verr
				}
				return e.planQuery(merged, viewDepth+1)
			}
		}
		return nil, err
	}
	p := &Plan{Query: q, Target: cl}
	if q.Only {
		p.Scope = []model.ClassID{cl.ID}
	} else {
		p.Scope, err = e.db.Catalog.Descendants(cl.ID)
		if err != nil {
			return nil, err
		}
	}
	// Validate projection and ORDER BY paths eagerly (first step must
	// resolve on the target class as attribute or method).
	for _, path := range q.Select {
		if err := e.checkPathHead(cl.ID, path); err != nil {
			return nil, err
		}
	}
	for _, agg := range q.Aggregates {
		if agg.Path != nil {
			if err := e.checkPathHead(cl.ID, *agg.Path); err != nil {
				return nil, err
			}
		}
	}
	if q.OrderBy != nil {
		if err := e.checkPathHead(cl.ID, *q.OrderBy); err != nil {
			return nil, err
		}
	}
	p.kind = accessScan
	if q.Where == nil || e.ForceScan {
		e.annotatePlan(p)
		return p, nil
	}
	e.chooseIndex(p)
	e.annotatePlan(p)
	return p, nil
}

// mergeView composes an outer query over a view definition. The outer
// WHERE conjoins with the view's; the outer projection, ordering, limit
// and aggregates override the view's when present. Restrictions keep the
// semantics honest: a view with ORDER BY or LIMIT only admits a bare
// SELECT * over it, and a view cannot itself be an aggregate.
func (e *Engine) mergeView(outer *Query, src string) (*Query, error) {
	inner, err := Parse(src)
	if err != nil {
		return nil, fmt.Errorf("query: view %q: %w", outer.From, err)
	}
	if len(inner.Aggregates) > 0 {
		return nil, fmt.Errorf("query: view %q is an aggregate; it cannot be queried FROM", outer.From)
	}
	if outer.Only {
		return nil, fmt.Errorf("query: ONLY cannot apply to view %q", outer.From)
	}
	if (inner.Limit > 0 || inner.OrderBy != nil) &&
		(outer.Where != nil || outer.Limit > 0 || outer.OrderBy != nil || len(outer.Select) > 0 || len(outer.Aggregates) > 0) {
		return nil, fmt.Errorf("query: view %q has ORDER BY/LIMIT; only SELECT * over it is supported", outer.From)
	}
	merged := &Query{
		From:       inner.From,
		Only:       inner.Only,
		Where:      inner.Where,
		Select:     inner.Select,
		OrderBy:    inner.OrderBy,
		Desc:       inner.Desc,
		Limit:      inner.Limit,
		Aggregates: outer.Aggregates,
	}
	if outer.Where != nil {
		if merged.Where != nil {
			merged.Where = &Binary{Op: OpAnd, L: merged.Where, R: outer.Where}
		} else {
			merged.Where = outer.Where
		}
	}
	if len(outer.Select) > 0 {
		merged.Select = outer.Select
	}
	if len(outer.Aggregates) > 0 {
		merged.Select = nil
	}
	if outer.OrderBy != nil {
		merged.OrderBy, merged.Desc = outer.OrderBy, outer.Desc
	}
	if outer.Limit > 0 {
		merged.Limit = outer.Limit
	}
	return merged, nil
}

func (e *Engine) checkPathHead(class model.ClassID, path Path) error {
	if len(path.Steps) == 0 {
		return fmt.Errorf("query: empty path")
	}
	if _, err := e.db.Catalog.ResolveAttr(class, path.Steps[0]); err == nil {
		return nil
	}
	if _, err := e.db.Catalog.ResolveMethod(class, path.Steps[0]); err == nil {
		return nil
	}
	return fmt.Errorf("query: %s has no attribute or method %q", e.className(class), path.Steps[0])
}

func (e *Engine) className(id model.ClassID) string {
	cl, err := e.db.Catalog.Class(id)
	if err != nil {
		return fmt.Sprintf("class(%d)", id)
	}
	return cl.Name
}

// sarg is an index-usable conjunct: path op literal.
type sarg struct {
	path Path
	op   BinOp
	lit  model.Value
}

// conjuncts flattens the top-level AND tree of the predicate.
func conjuncts(ex Expr, out []Expr) []Expr {
	if b, ok := ex.(*Binary); ok && b.Op == OpAnd {
		out = conjuncts(b.L, out)
		return conjuncts(b.R, out)
	}
	return append(out, ex)
}

// extractSargs pulls index-usable comparisons out of the predicate.
func extractSargs(ex Expr) []sarg {
	var out []sarg
	for _, c := range conjuncts(ex, nil) {
		b, ok := c.(*Binary)
		if !ok {
			continue
		}
		switch b.Op {
		case OpEq, OpLt, OpLe, OpGt, OpGe, OpContains:
		default:
			continue
		}
		pe, pok := b.L.(*PathExpr)
		lit, lok := b.R.(*Lit)
		op := b.Op
		if !pok || !lok {
			// literal op path: flip.
			if pe2, ok2 := b.R.(*PathExpr); ok2 {
				if lit2, ok3 := b.L.(*Lit); ok3 {
					pe, lit, pok, lok = pe2, lit2, true, true
					op = flip(op)
				}
			}
		}
		if !pok || !lok || lit.V.IsNull() {
			continue
		}
		// CONTAINS probes the same key space as equality (set members are
		// indexed individually).
		if op == OpContains {
			op = OpEq
		}
		out = append(out, sarg{path: pe.Path, op: op, lit: lit.V})
	}
	return out
}

func flip(op BinOp) BinOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return op
	}
}

// resolveAttrPath maps a name path to AttrIDs starting at class, following
// reference domains; it fails if any step is a method or unknown.
func (e *Engine) resolveAttrPath(class model.ClassID, path Path) ([]model.AttrID, bool) {
	cur := class
	out := make([]model.AttrID, 0, len(path.Steps))
	for i, step := range path.Steps {
		a, err := e.db.Catalog.ResolveAttr(cur, step)
		if err != nil {
			return nil, false
		}
		out = append(out, a.ID)
		if i < len(path.Steps)-1 {
			if schema.IsPrimitive(a.Domain) {
				return nil, false
			}
			cur = a.Domain
		}
	}
	return out, true
}

// chooseIndex picks the cheapest usable access path. With statistics over
// the whole scope (collected by internal/maint) the choice is cost-based:
// each candidate index is charged its estimated posting count times a
// random-fetch penalty, a heap scan is charged the scope cardinality, and
// the cheapest wins — so an unselective predicate keeps the scan even when
// an index exists. Without statistics the heuristic ranking applies:
// equality beats range, one index beats a per-class union, and any index
// beats a heap scan. Either way the system — not the application — chooses
// among access methods (Kim §2.2).
func (e *Engine) chooseIndex(p *Plan) {
	type candidate struct {
		kind    accessKind
		indexes []*index.Index
		s       sarg
		attr    model.AttrID // statistics attribute; valid when estOK
		estOK   bool
	}
	rank := func(k accessKind) int {
		switch k {
		case accessIndexEq:
			return 0
		case accessUnionEq:
			return 1
		case accessIndexRng:
			return 2
		case accessUnionRng:
			return 3
		default:
			return 4
		}
	}
	var cands []*candidate
	for _, s := range extractSargs(p.Query.Where) {
		attrPath, ok := e.resolveAttrPath(p.Target.ID, s.path)
		if !ok {
			continue
		}
		attr, estOK := sargAttr(attrPath)
		// Single index covering the whole scope.
		if idx := e.findCoveringIndex(p, attrPath); idx != nil {
			kind := accessIndexEq
			if s.op != OpEq {
				kind = accessIndexRng
			}
			cands = append(cands, &candidate{kind: kind, indexes: []*index.Index{idx}, s: s, attr: attr, estOK: estOK})
			continue
		}
		// Union of single-class indexes, one per scope class.
		if union := e.findUnionIndexes(p, attrPath); union != nil {
			kind := accessUnionEq
			if s.op != OpEq {
				kind = accessUnionRng
			}
			cands = append(cands, &candidate{kind: kind, indexes: union, s: s, attr: attr, estOK: estOK})
		}
	}
	if len(cands) == 0 {
		return
	}
	var best *candidate
	if est := e.newEstimator(p.Scope); est != nil {
		allEst := true
		for _, c := range cands {
			if !c.estOK {
				allEst = false
				break
			}
		}
		if allEst {
			// Cost-based: cheapest candidate vs. the full scan.
			rows := make([]float64, len(cands))
			bi := 0
			for i, c := range cands {
				rows[i] = est.predicateRows([]estSarg{{s: c.s, attr: c.attr}})
				if rows[i] < rows[bi] || (rows[i] == rows[bi] && rank(c.kind) < rank(cands[bi].kind)) {
					bi = i
				}
			}
			if rows[bi]*probeCostFactor >= est.totalCard() {
				return // the predicate is not selective enough: scan wins
			}
			best = cands[bi]
		}
	}
	if best == nil {
		// Heuristic ranking (no or partial statistics).
		for _, c := range cands {
			if best == nil || rank(c.kind) < rank(best.kind) {
				best = c
			}
		}
	}
	p.kind = best.kind
	p.indexes = best.indexes
	switch best.s.op {
	case OpEq:
		p.probe = best.s.lit
	case OpGt, OpGe:
		p.lo, p.hi, p.hiInc = best.s.lit, model.Null, false
	case OpLt, OpLe:
		p.lo, p.hi, p.hiInc = model.Null, best.s.lit, true
	}
}

// findCoveringIndex returns one index on attrPath covering every class in
// the plan scope, or nil.
func (e *Engine) findCoveringIndex(p *Plan, attrPath []model.AttrID) *index.Index {
	for _, idx := range e.db.Indexes.All() {
		if !pathEqual(idx.Path, attrPath) {
			continue
		}
		if idx.Hierarchy {
			if e.db.Catalog.IsSubclassOf(p.Target.ID, idx.Class) {
				return idx
			}
			continue
		}
		// SC index covers the scope only when the scope is exactly its
		// class.
		if len(p.Scope) == 1 && p.Scope[0] == idx.Class {
			return idx
		}
	}
	return nil
}

// findUnionIndexes returns one single-class index per scope class on
// attrPath, or nil if any class is uncovered. This is the
// one-index-per-class organization the CH-index is measured against (E1).
func (e *Engine) findUnionIndexes(p *Plan, attrPath []model.AttrID) []*index.Index {
	out := make([]*index.Index, 0, len(p.Scope))
	for _, c := range p.Scope {
		var found *index.Index
		for _, idx := range e.db.Indexes.All() {
			if !idx.Hierarchy && idx.Class == c && pathEqual(idx.Path, attrPath) {
				found = idx
				break
			}
		}
		if found == nil {
			return nil
		}
		out = append(out, found)
	}
	return out
}

func pathEqual(a, b []model.AttrID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
