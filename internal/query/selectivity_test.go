package query

import (
	"strings"
	"testing"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/schema"
	"oodb/internal/stats"
)

// selDB builds one class P{n Integer} with a hierarchy index on n, holding
// total rows whose n values cycle 0..distinct-1.
func selDB(t *testing.T, total, distinct int) (*core.DB, *Engine, *schema.Class) {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	cl, err := db.DefineClass("P", nil, schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("p_n", cl.ID, []string{"n"}, true); err != nil {
		t.Fatal(err)
	}
	if err := db.Do(func(tx *core.Tx) error {
		for i := 0; i < total; i++ {
			if _, err := tx.InsertClass(cl.ID, map[string]model.Value{
				"n": model.Int(int64(i % distinct))}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return db, NewEngine(db), cl
}

// analyze collects statistics for every class in the scope, the way
// internal/maint does (duplicated here to keep the test dependency-free).
func analyze(t *testing.T, db *core.DB, classes ...model.ClassID) {
	t.Helper()
	for _, c := range classes {
		col := stats.NewCollector(c)
		err := db.AnalyzeClass(c, func(oid model.OID, data []byte) {
			if obj, derr := model.DecodeObject(data); derr == nil {
				col.Observe(obj, len(data))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		db.Stats.Put(col.Finalize())
	}
}

func mustPlan(t *testing.T, e *Engine, src string) *Plan {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSelectivitySelectivePredicateProbesIndex: with statistics, a
// predicate matching ~1 of 1000 rows keeps the index and carries a
// cardinality estimate on the plan.
func TestSelectivitySelectivePredicateProbesIndex(t *testing.T) {
	_, eng, _ := selDB(t, 1000, 1000)
	src := `SELECT * FROM P WHERE n = 5`

	before := mustPlan(t, eng, src)
	if !before.IndexUsed() || before.HasEst {
		t.Fatalf("pre-stats plan = %s (want heuristic index, no estimate)", before)
	}

	analyze(t, eng.db, before.Scope...)
	after := mustPlan(t, eng, src)
	if !after.IndexUsed() {
		t.Fatalf("selective predicate lost the index: %s", after)
	}
	if !after.HasEst || after.EstRows < 0.5 || after.EstRows > 2 {
		t.Fatalf("est rows = %.2f (HasEst=%v), want ~1", after.EstRows, after.HasEst)
	}
	if !strings.Contains(after.String(), "est_rows=") {
		t.Fatalf("plan string missing estimate: %s", after)
	}
}

// TestSelectivityUnselectivePredicateKeepsScan: the same query shape over
// a 2-distinct-value attribute estimates half the class per probe; the
// cost model must reject the index the heuristic would have taken.
func TestSelectivityUnselectivePredicateKeepsScan(t *testing.T) {
	_, eng, _ := selDB(t, 1000, 2)
	src := `SELECT * FROM P WHERE n = 1`

	before := mustPlan(t, eng, src)
	if !before.IndexUsed() {
		t.Fatalf("heuristic plan should probe the index: %s", before)
	}

	analyze(t, eng.db, before.Scope...)
	after := mustPlan(t, eng, src)
	if after.IndexUsed() {
		t.Fatalf("cost model kept the index for a half-the-class predicate: %s", after)
	}
	if !after.HasEst || after.EstRows < 400 || after.EstRows > 600 {
		t.Fatalf("est rows = %.2f, want ~500", after.EstRows)
	}
	// The plans agree on the result either way — stats steer cost only.
	tx := eng.db.Begin()
	defer tx.Commit()
	res, err := eng.Run(tx, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 500 {
		t.Fatalf("scan plan returned %d rows, want 500", len(res.Rows))
	}
}

// TestSelectivityRangeInterpolation: a range predicate interpolates
// against the observed min/max instead of using the flat default.
func TestSelectivityRangeInterpolation(t *testing.T) {
	_, eng, _ := selDB(t, 1000, 1000)
	analyze(t, eng.db, mustPlan(t, eng, `SELECT * FROM P`).Scope...)

	p := mustPlan(t, eng, `SELECT * FROM P WHERE n >= 900`)
	if !p.HasEst || p.EstRows < 80 || p.EstRows > 120 {
		t.Fatalf("est rows for n >= 900 over 0..999 = %.1f, want ~100", p.EstRows)
	}
	if !p.IndexUsed() {
		t.Fatalf("selective range predicate should use the index: %s", p)
	}
	wide := mustPlan(t, eng, `SELECT * FROM P WHERE n >= 100`)
	if wide.IndexUsed() {
		t.Fatalf("90%%-of-class range predicate should scan: %s", wide)
	}
	if wide.EstRows < 800 || wide.EstRows > 1000 {
		t.Fatalf("est rows for n >= 100 = %.1f, want ~900", wide.EstRows)
	}
}

// TestSelectivityExplainAnalyzeShowsEstimate: EXPLAIN ANALYZE renders the
// estimate next to the actual row count — the at-a-glance staleness check.
func TestSelectivityExplainAnalyzeShowsEstimate(t *testing.T) {
	_, eng, _ := selDB(t, 1000, 1000)
	analyze(t, eng.db, mustPlan(t, eng, `SELECT * FROM P`).Scope...)

	tx := eng.db.Begin()
	defer tx.Commit()
	out, err := eng.ExplainAnalyze(tx, `SELECT * FROM P WHERE n = 5`)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"access=index-eq(p_n)", "est_rows=1.0", "rows=1 est=1.0"} {
		if !strings.Contains(out, w) {
			t.Fatalf("ExplainAnalyze output missing %q:\n%s", w, out)
		}
	}
}

// TestSelectivityScopeReorderUnderLimit: a hierarchy scan with LIMIT and
// no ORDER BY visits the classes expected to match most first.
func TestSelectivityScopeReorderUnderLimit(t *testing.T) {
	db, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	base, err := db.DefineClass("Base", nil, schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := db.DefineClass("Sub", []model.ClassID{base.ID})
	if err != nil {
		t.Fatal(err)
	}
	// The subclass holds every match; the base class holds none.
	if err := db.Do(func(tx *core.Tx) error {
		for i := 0; i < 50; i++ {
			if _, err := tx.InsertClass(base.ID, map[string]model.Value{"n": model.Int(-1)}); err != nil {
				return err
			}
			if _, err := tx.InsertClass(sub.ID, map[string]model.Value{"n": model.Int(int64(i))}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(db)
	analyze(t, db, base.ID, sub.ID)

	p := mustPlan(t, eng, `SELECT * FROM Base WHERE n >= 0 LIMIT 5`)
	if p.kind != accessScan {
		t.Fatalf("expected a heap scan, got %s", p)
	}
	if p.Scope[0] != sub.ID {
		t.Fatalf("scope order %v, want the all-matching subclass %d first", p.Scope, sub.ID)
	}
	// Without LIMIT the declared order is preserved.
	p2 := mustPlan(t, eng, `SELECT * FROM Base WHERE n >= 0`)
	if p2.Scope[0] != base.ID {
		t.Fatalf("scope reordered without LIMIT: %v", p2.Scope)
	}
}

// TestSelectivityAdvisoryOnly: partial statistics coverage disables the
// estimator entirely — plans are identical to the no-stats baseline.
func TestSelectivityAdvisoryOnly(t *testing.T) {
	db, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	base, _ := db.DefineClass("Base", nil, schema.AttrSpec{Name: "n", Domain: schema.ClassInteger})
	sub, _ := db.DefineClass("Sub", []model.ClassID{base.ID})
	if err := db.Do(func(tx *core.Tx) error {
		for i := 0; i < 20; i++ {
			if _, err := tx.InsertClass(sub.ID, map[string]model.Value{"n": model.Int(int64(i))}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(db)
	baseline := mustPlan(t, eng, `SELECT * FROM Base WHERE n = 3`).String()

	analyze(t, db, sub.ID) // Base left unanalyzed: partial coverage
	partial := mustPlan(t, eng, `SELECT * FROM Base WHERE n = 3`)
	if partial.HasEst {
		t.Fatal("estimator active with partial scope coverage")
	}
	if got := partial.String(); got != baseline {
		t.Fatalf("partial statistics changed the plan:\n  before: %s\n  after:  %s", baseline, got)
	}
}
