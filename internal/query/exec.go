package query

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/obs"
)

// Row is one result object with its projected values.
type Row struct {
	OID    model.OID
	Object *model.Object
	Values []model.Value // aligned with Result.Cols
}

// Result is a completed query.
type Result struct {
	Cols []string
	Rows []Row
}

// Run parses, plans and executes src inside tx.
func (e *Engine) Run(tx *core.Tx, src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	plan, err := e.PlanQuery(q)
	if err != nil {
		return nil, err
	}
	return e.Execute(tx, plan)
}

// Explain parses and plans src, returning the plan description.
func (e *Engine) Explain(src string) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	plan, err := e.PlanQuery(q)
	if err != nil {
		return "", err
	}
	return plan.String(), nil
}

// Execute runs a compiled plan inside tx. The scope classes are locked
// shared for the duration of the transaction (strict 2PL).
func (e *Engine) Execute(tx *core.Tx, p *Plan) (*Result, error) {
	return e.execute(tx, p, nil)
}

// execute is Execute with an optional trace span: ExplainAnalyze passes a
// root span and every stage hangs per-stage child spans (with row and
// probe counters) off it; the normal path passes nil, which every span
// method treats as a no-op.
//
// Under a snapshot transaction (core.BeginSnapshot) the same pipeline
// runs lock-free: LockClassScan is a no-op, scans and probes resolve
// visibility by the pinned commit epoch, and path dereferences read the
// snapshot-visible version of every object they cross.
func (e *Engine) execute(tx *core.Tx, p *Plan, span *obs.Span) (*Result, error) {
	mQueriesTotal.Add(1)
	if err := tx.LockClassScan(p.Scope); err != nil {
		return nil, err
	}

	var rows []Row
	switch p.kind {
	case accessScan:
		var err error
		rows, err = e.scanRows(tx, p, span)
		if err != nil {
			return nil, err
		}
	default:
		var err error
		rows, err = e.probeRows(tx, p, span)
		if err != nil {
			return nil, err
		}
	}

	// ORDER BY.
	if p.Query.OrderBy != nil {
		sortSpan := span.Child("sort")
		sortSpan.Set("rows_in", int64(len(rows)))
		keys := make([]model.Value, len(rows))
		for i := range rows {
			v, err := e.evalPath(tx, rows[i].Object, p.Query.OrderBy.Steps)
			if err != nil {
				sortSpan.End()
				return nil, err
			}
			keys[i] = v
		}
		// Sort rows and keys together through an index permutation.
		idxs := make([]int, len(rows))
		for i := range idxs {
			idxs[i] = i
		}
		sort.SliceStable(idxs, func(a, b int) bool {
			c := model.Compare(keys[idxs[a]], keys[idxs[b]])
			if p.Query.Desc {
				return c > 0
			}
			return c < 0
		})
		sorted := make([]Row, len(rows))
		for i, j := range idxs {
			sorted[i] = rows[j]
		}
		rows = sorted
		sortSpan.End()
	}
	if p.Query.Limit > 0 && len(rows) > p.Query.Limit {
		rows = rows[:p.Query.Limit]
	}

	// Aggregates collapse the result to a single row.
	if len(p.Query.Aggregates) > 0 {
		aggSpan := span.Child("aggregate")
		aggSpan.Set("rows_in", int64(len(rows)))
		res, err := e.aggregate(tx, p, rows)
		aggSpan.End()
		return res, err
	}

	projSpan := span.Child("project")
	projSpan.Set("rows_out", int64(len(rows)))
	defer projSpan.End()

	// Projection. One backing array serves every row's Values slice: the
	// result set is assembled and consumed together, so per-row slices
	// would only fragment the heap.
	res := &Result{}
	if len(p.Query.Select) == 0 {
		res.Cols = []string{"oid"}
		backing := make([]model.Value, len(rows))
		for i := range rows {
			backing[i] = model.Ref(rows[i].OID)
			rows[i].Values = backing[i : i+1 : i+1]
		}
	} else {
		for _, path := range p.Query.Select {
			res.Cols = append(res.Cols, path.String())
		}
		w := len(p.Query.Select)
		backing := make([]model.Value, len(rows)*w)
		for i := range rows {
			vals := backing[i*w : (i+1)*w : (i+1)*w]
			for j, path := range p.Query.Select {
				v, err := e.evalPath(tx, rows[i].Object, path.Steps)
				if err != nil {
					return nil, err
				}
				vals[j] = v
			}
			rows[i].Values = vals
		}
	}
	res.Rows = rows
	return res, nil
}

// earlyLimit returns the row count past which collection may stop, or 0
// when every match is needed (no LIMIT, or ORDER BY must see all matches).
func earlyLimit(p *Plan) int {
	if p.Query.OrderBy == nil && p.Query.Limit > 0 {
		return p.Query.Limit
	}
	return 0
}

// matches evaluates the residual predicate against one candidate.
func (e *Engine) matches(tx *core.Tx, p *Plan, obj *model.Object) (bool, error) {
	if p.Query.Where == nil {
		return true, nil
	}
	return e.evalBool(tx, p.Query.Where, obj)
}

// deref resolves an interior reference for path evaluation. Snapshot
// transactions read the version visible at their pinned epoch — a path
// that crosses an object mid-overwrite must not observe the writer's
// uncommitted bytes. Locked transactions read the heap directly; their
// scope S locks already make that stable.
func (e *Engine) deref(tx *core.Tx, oid model.OID) (*model.Object, error) {
	if tx != nil && tx.Snapshot() {
		return tx.Fetch(oid)
	}
	return e.db.FetchObject(oid)
}

// scanRows collects the matching rows of a heap-scan plan. A scope of more
// than one class fans out one goroutine per class (bounded by GOMAXPROCS):
// Kim's query model evaluates a hierarchy-scoped query as independent
// per-class scans, and the scope's S locks are already held, so the scans
// share nothing but the storage layer. Per-class results are concatenated
// in scope order, which makes the output identical to a sequential pass.
func (e *Engine) scanRows(tx *core.Tx, p *Plan, span *obs.Span) ([]Row, error) {
	limit := earlyLimit(p)
	if e.SerialScan || len(p.Scope) == 1 {
		var rows []Row
		for _, class := range p.Scope {
			cs := span.Child("scan " + e.className(class))
			var scanned, matched uint64
			var ierr error
			err := tx.ScanLocked(class, func(obj *model.Object) bool {
				scanned++
				ok, merr := e.matches(tx, p, obj)
				if merr != nil {
					ierr = merr
					return false
				}
				if ok {
					matched++
					rows = append(rows, Row{OID: obj.OID, Object: obj})
				}
				return limit == 0 || len(rows) < limit
			})
			mRowsScanned.Add(scanned)
			mRowsMatched.Add(matched)
			cs.Set("rows_scanned", int64(scanned))
			cs.Set("rows_matched", int64(matched))
			cs.End()
			if err != nil {
				return nil, err
			}
			if ierr != nil {
				return nil, ierr
			}
			if limit > 0 && len(rows) >= limit {
				mEarlyExits.Add(1)
				span.Set("limit_early_exit", 1)
				break
			}
		}
		return rows, nil
	}

	mFanoutWidth.Observe(uint64(len(p.Scope)))
	span.Set("fanout_width", int64(len(p.Scope)))
	perClass := make([][]Row, len(p.Scope))
	errs := make([]error, len(p.Scope))
	// full is the smallest scope index whose class alone satisfied the
	// limit: classes after it cannot contribute to the result, so their
	// scans stop early.
	var full atomic.Int64
	full.Store(int64(len(p.Scope)))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, class := range p.Scope {
		wg.Add(1)
		go func(i int, class model.ClassID) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if int64(i) > full.Load() {
				return
			}
			cs := span.Child("scan " + e.className(class))
			defer cs.End()
			var scanned, matched uint64
			var mine []Row
			var ierr error
			errs[i] = tx.ScanLocked(class, func(obj *model.Object) bool {
				if int64(i) > full.Load() {
					return false
				}
				scanned++
				ok, merr := e.matches(tx, p, obj)
				if merr != nil {
					ierr = merr
					return false
				}
				if ok {
					matched++
					mine = append(mine, Row{OID: obj.OID, Object: obj})
					if limit > 0 && len(mine) >= limit {
						for {
							cur := full.Load()
							if int64(i) >= cur || full.CompareAndSwap(cur, int64(i)) {
								break
							}
						}
						mEarlyExits.Add(1)
						return false
					}
				}
				return true
			})
			mRowsScanned.Add(scanned)
			mRowsMatched.Add(matched)
			cs.Set("rows_scanned", int64(scanned))
			cs.Set("rows_matched", int64(matched))
			if errs[i] == nil {
				errs[i] = ierr
			}
			perClass[i] = mine
		}(i, class)
	}
	wg.Wait()
	var rows []Row
	for i := range p.Scope {
		if errs[i] != nil {
			return nil, errs[i]
		}
		rows = append(rows, perClass[i]...)
		if limit > 0 && len(rows) >= limit {
			rows = rows[:limit]
			break
		}
	}
	return rows, nil
}

// probeRows collects the matching rows of an index plan. Each index's
// postings are probed and filtered incrementally — with LIMIT and no ORDER
// BY the probe stops as soon as enough rows matched, instead of
// materializing every candidate OID and truncating afterwards (the same
// early exit the heap-scan path has).
//
// Snapshot transactions probe the same live index but resolve every
// candidate through the pinned epoch, then sweep the version-chain
// overlay for the scope classes: a commit after the snapshot began may
// have moved an object to a new key (its old posting is gone) or deleted
// it outright, and any such object by construction has a chain. The full
// WHERE re-evaluation in matches keeps stale postings out on both paths.
func (e *Engine) probeRows(tx *core.Tx, p *Plan, span *obs.Span) ([]Row, error) {
	scopeSet := make(map[model.ClassID]bool, len(p.Scope))
	for _, c := range p.Scope {
		scopeSet[c] = true
	}
	limit := earlyLimit(p)
	var rows []Row
	seen := make(map[model.OID]bool)

	// collect filters one candidate OID into rows, reporting whether the
	// probe is finished (limit satisfied) and any evaluation error. Both
	// the posting loops and the overlay sweep funnel through it so the
	// dedup map and limit accounting stay consistent.
	collect := func(oid model.OID, examined, matched *uint64) (bool, error) {
		if seen[oid] {
			return false, nil
		}
		seen[oid] = true
		*examined++
		obj, err := e.deref(tx, oid)
		if err != nil {
			return false, nil // dangling entry or invisible at this snapshot
		}
		if !scopeSet[obj.Class()] {
			return false, nil
		}
		ok, err := e.matches(tx, p, obj)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		*matched++
		rows = append(rows, Row{OID: obj.OID, Object: obj})
		return limit > 0 && len(rows) >= limit, nil
	}

	for _, idx := range p.indexes {
		ps := span.Child("probe " + idx.Name)
		mIndexProbes.Add(1)
		var oids []model.OID
		if !p.probe.IsNull() {
			oids = idx.Lookup(p.probe, scopeSet)
		} else {
			oids = idx.Range(p.lo, p.hi, p.hiInc, scopeSet)
		}
		var examined, matched uint64
		for _, oid := range oids {
			full, err := collect(oid, &examined, &matched)
			if err != nil || full {
				mRowsScanned.Add(examined)
				mRowsMatched.Add(matched)
				ps.Set("rows_examined", int64(examined))
				ps.Set("rows_matched", int64(matched))
				ps.End()
				if err != nil {
					return nil, err
				}
				mEarlyExits.Add(1)
				span.Set("limit_early_exit", 1)
				return rows, nil
			}
		}
		mRowsScanned.Add(examined)
		mRowsMatched.Add(matched)
		ps.Set("rows_examined", int64(examined))
		ps.Set("rows_matched", int64(matched))
		ps.End()
	}

	// Overlay sweep (snapshot mode only: SnapshotOverlayOIDs returns nil
	// for locked transactions, whose S locks freeze the index itself).
	for _, class := range p.Scope {
		overlay := tx.SnapshotOverlayOIDs(class)
		if len(overlay) == 0 {
			continue
		}
		os := span.Child("overlay " + e.className(class))
		var examined, matched uint64
		for _, oid := range overlay {
			full, err := collect(oid, &examined, &matched)
			if err != nil || full {
				mRowsScanned.Add(examined)
				mRowsMatched.Add(matched)
				os.Set("rows_examined", int64(examined))
				os.Set("rows_matched", int64(matched))
				os.End()
				if err != nil {
					return nil, err
				}
				mEarlyExits.Add(1)
				span.Set("limit_early_exit", 1)
				return rows, nil
			}
		}
		mRowsScanned.Add(examined)
		mRowsMatched.Add(matched)
		os.Set("rows_examined", int64(examined))
		os.Set("rows_matched", int64(matched))
		os.End()
	}
	return rows, nil
}

// aggregate computes the aggregate select list over the matched rows.
// COUNT(*) counts rows; per-path aggregates skip nulls; set values
// contribute each member. SUM and AVG require numeric inputs.
func (e *Engine) aggregate(tx *core.Tx, p *Plan, rows []Row) (*Result, error) {
	res := &Result{}
	vals := make([]model.Value, len(p.Query.Aggregates))
	for i, agg := range p.Query.Aggregates {
		res.Cols = append(res.Cols, agg.String())
		if agg.Path == nil { // COUNT(*)
			vals[i] = model.Int(int64(len(rows)))
			continue
		}
		var count int64
		var sum float64
		var allInt = true
		var best model.Value
		for _, row := range rows {
			v, err := e.evalPath(tx, row.Object, agg.Path.Steps)
			if err != nil {
				return nil, err
			}
			members := []model.Value{v}
			if set, ok := v.AsSet(); ok {
				members = set
			}
			for _, m := range members {
				if m.IsNull() {
					continue
				}
				count++
				switch agg.Func {
				case AggSum, AggAvg:
					f, ok := m.AsFloat()
					if !ok {
						return nil, fmt.Errorf("query: %s over non-numeric value %s", agg.Func, m)
					}
					if m.Kind() != model.KindInt {
						allInt = false
					}
					sum += f
				case AggMin:
					if best.IsNull() || model.Compare(m, best) < 0 {
						best = m
					}
				case AggMax:
					if best.IsNull() || model.Compare(m, best) > 0 {
						best = m
					}
				}
			}
		}
		switch agg.Func {
		case AggCount:
			vals[i] = model.Int(count)
		case AggSum:
			if allInt {
				vals[i] = model.Int(int64(sum))
			} else {
				vals[i] = model.Float(sum)
			}
		case AggAvg:
			if count == 0 {
				vals[i] = model.Null
			} else {
				vals[i] = model.Float(sum / float64(count))
			}
		case AggMin, AggMax:
			vals[i] = best
		}
	}
	res.Rows = []Row{{Values: vals}}
	return res, nil
}

// evalBool evaluates a predicate against one candidate object.
func (e *Engine) evalBool(tx *core.Tx, ex Expr, obj *model.Object) (bool, error) {
	switch n := ex.(type) {
	case *Binary:
		switch n.Op {
		case OpAnd:
			l, err := e.evalBool(tx, n.L, obj)
			if err != nil || !l {
				return false, err
			}
			return e.evalBool(tx, n.R, obj)
		case OpOr:
			l, err := e.evalBool(tx, n.L, obj)
			if err != nil || l {
				return l, err
			}
			return e.evalBool(tx, n.R, obj)
		case OpIn:
			lv, err := e.evalValue(tx, n.L, obj)
			if err != nil {
				return false, err
			}
			list, ok := n.R.(*List)
			if !ok {
				return false, fmt.Errorf("query: IN requires a literal list")
			}
			for _, item := range list.Items {
				if existsEqual(lv, item) {
					return true, nil
				}
			}
			return false, nil
		case OpContains:
			lv, err := e.evalValue(tx, n.L, obj)
			if err != nil {
				return false, err
			}
			rv, err := e.evalValue(tx, n.R, obj)
			if err != nil {
				return false, err
			}
			return lv.Contains(rv), nil
		default:
			lv, err := e.evalValue(tx, n.L, obj)
			if err != nil {
				return false, err
			}
			rv, err := e.evalValue(tx, n.R, obj)
			if err != nil {
				return false, err
			}
			return compareOp(n.Op, lv, rv), nil
		}
	case *Not:
		v, err := e.evalBool(tx, n.E, obj)
		return !v, err
	case *PathExpr:
		v, err := e.evalValue(tx, n, obj)
		if err != nil {
			return false, err
		}
		b, _ := v.AsBool()
		return b, nil
	case *Lit:
		b, _ := n.V.AsBool()
		return b, nil
	default:
		return false, fmt.Errorf("query: cannot evaluate %T as boolean", ex)
	}
}

// compareOp applies a comparison with SQL-style null semantics: ordering
// comparisons with null are false; equality treats null = null as true
// (needed for `path = null` existence tests). Multi-valued operands
// (set-valued attributes, paths through set-valued references) compare
// existentially.
func compareOp(op BinOp, l, r model.Value) bool {
	if lm, ok := l.AsSet(); ok && r.Kind() != model.KindSet {
		for _, m := range lm {
			if compareOp(op, m, r) {
				return true
			}
		}
		return false
	}
	switch op {
	case OpEq:
		return model.Compare(l, r) == 0
	case OpNe:
		return model.Compare(l, r) != 0
	}
	if l.IsNull() || r.IsNull() {
		return false
	}
	c := model.Compare(l, r)
	switch op {
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// existsEqual is existential equality for IN.
func existsEqual(l, r model.Value) bool { return compareOp(OpEq, l, r) }

// evalValue evaluates an operand expression to a value.
func (e *Engine) evalValue(tx *core.Tx, ex Expr, obj *model.Object) (model.Value, error) {
	switch n := ex.(type) {
	case *Lit:
		return n.V, nil
	case *PathExpr:
		return e.evalPath(tx, obj, n.Path.Steps)
	default:
		return model.Null, fmt.Errorf("query: cannot evaluate %T as value", ex)
	}
}

// evalPath walks a path from obj: each step reads an attribute (stored
// value or class default) or invokes a method as a derived attribute.
// Interior references are dereferenced; set-valued steps fan out and the
// result is the set of terminal values (existential comparison semantics).
// A null or dangling step yields null.
func (e *Engine) evalPath(tx *core.Tx, obj *model.Object, steps []string) (model.Value, error) {
	// Single-step fast path: the common `WHERE attr op k` shape. Scans
	// evaluate this once per object, so the general walk below (two slice
	// allocations per call) turns hot loops GC-bound.
	if len(steps) == 1 {
		v, err := e.stepValue(obj, steps[0])
		if err != nil {
			return model.Null, err
		}
		if members, ok := v.AsSet(); ok {
			// Match the general walk: flatten, so a singleton set yields
			// its member and an empty set yields null.
			switch len(members) {
			case 0:
				return model.Null, nil
			case 1:
				return members[0], nil
			}
		}
		return v, nil
	}
	cur := []*model.Object{obj}
	for i, step := range steps {
		last := i == len(steps)-1
		var vals []model.Value
		for _, o := range cur {
			v, err := e.stepValue(o, step)
			if err != nil {
				return model.Null, err
			}
			if v.IsNull() {
				continue
			}
			if members, ok := v.AsSet(); ok {
				vals = append(vals, members...)
			} else {
				vals = append(vals, v)
			}
		}
		if last {
			switch len(vals) {
			case 0:
				return model.Null, nil
			case 1:
				return vals[0], nil
			default:
				return model.Set(vals...), nil
			}
		}
		// Interior: dereference references.
		next := cur[:0:0]
		for _, v := range vals {
			oid, ok := v.AsRef()
			if !ok {
				continue // non-reference interior value dead-ends
			}
			o, err := e.deref(tx, oid)
			if err != nil {
				continue // dangling reference dead-ends
			}
			next = append(next, o)
		}
		cur = next
		if len(cur) == 0 {
			return model.Null, nil
		}
	}
	return model.Null, nil
}

// stepValue resolves one path step on one object: attribute first, then
// method (late-bound, no arguments).
func (e *Engine) stepValue(o *model.Object, step string) (model.Value, error) {
	if a, err := e.db.Catalog.ResolveAttr(o.Class(), step); err == nil {
		if v, ok := o.Lookup(a.ID); ok {
			return v, nil
		}
		return a.Default, nil
	}
	if m, err := e.db.Catalog.ResolveMethod(o.Class(), step); err == nil {
		if m.Impl == nil {
			return model.Null, fmt.Errorf("query: method %q has no registered implementation", step)
		}
		return m.Impl(e.db, o, nil)
	}
	return model.Null, fmt.Errorf("query: %s has no attribute or method %q", e.className(o.Class()), step)
}
