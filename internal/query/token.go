// Package query implements kimdb's declarative query facility: an
// OQL-flavored language over the object-oriented schema, a planner that
// selects among class-hierarchy indexes, nested-attribute indexes and heap
// scans, and an executor that evaluates predicates against the nested
// definition of the target class (Kim §3.2 Query Model).
//
// The language:
//
//	SELECT <* | path[, path...] | AGG(path|*)[, AGG(...)...]> FROM [ONLY] Class
//	[WHERE <boolean expression over paths, literals, methods>]
//	[ORDER BY path [ASC|DESC]] [LIMIT n]
//
// Aggregates are COUNT, SUM, AVG, MIN, MAX; COUNT(*) counts matching
// objects, per-path aggregates skip nulls and expand set values.
//
// A query against class C ranges over C and the class hierarchy rooted at
// C; ONLY restricts it to C's own instances. A path a.b.c dereferences
// object references attribute by attribute; a step that names a method
// invokes it (methods as derived attributes).
package query

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer produces tokens from query source.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front (queries are short).
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
		case c >= '0' && c <= '9' || (c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'):
			kind := tokInt
			l.pos++
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
				l.pos++
			}
			if l.pos < len(l.src) && l.src[l.pos] == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
				kind = tokFloat
				l.pos++
				for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
					l.pos++
				}
			}
			l.toks = append(l.toks, token{kind: kind, text: l.src[start:l.pos], pos: start})
		case c == '\'' || c == '"':
			quote := c
			l.pos++
			var sb strings.Builder
			closed := false
			for l.pos < len(l.src) {
				ch := l.src[l.pos]
				if ch == quote {
					// Doubled quote escapes itself.
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
						sb.WriteByte(quote)
						l.pos += 2
						continue
					}
					l.pos++
					closed = true
					break
				}
				sb.WriteByte(ch)
				l.pos++
			}
			if !closed {
				return nil, fmt.Errorf("query: unterminated string at offset %d", start)
			}
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
		default:
			// Multi-char operators first.
			for _, op := range []string{"<=", ">=", "!=", "<>"} {
				if strings.HasPrefix(l.src[l.pos:], op) {
					l.toks = append(l.toks, token{kind: tokSymbol, text: op, pos: start})
					l.pos += 2
					goto next
				}
			}
			switch c {
			case '=', '<', '>', '(', ')', ',', '.', '*':
				l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
				l.pos++
			default:
				return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, l.pos)
			}
		next:
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
