package query

import (
	"strings"
	"testing"

	"oodb/internal/model"
)

func TestExplainAnalyzeHierarchyScan(t *testing.T) {
	f := newFigure1(t)
	tx := f.db.Begin()
	defer tx.Commit()
	out, err := f.eng.ExplainAnalyze(tx, `SELECT * FROM Vehicle WHERE weight > 6000`)
	if err != nil {
		t.Fatal(err)
	}
	// The annotation carries the plan line, the result size, the buffer
	// figures and a per-class scan breakdown over the whole hierarchy.
	for _, w := range []string{
		"scope=Vehicle(4 classes)",
		"rows=4",
		"buffer: hits=",
		"query",
		"rows_scanned=",
		"rows_matched=",
	} {
		if !strings.Contains(out, w) {
			t.Fatalf("ExplainAnalyze output missing %q:\n%s", w, out)
		}
	}
	// Every scope class appears as a scan child span.
	for _, class := range []string{"Vehicle", "Automobile", "Truck", "DomesticAutomobile"} {
		if !strings.Contains(out, "scan "+class) {
			t.Fatalf("ExplainAnalyze output missing scan span for %s:\n%s", class, out)
		}
	}
}

func TestExplainAnalyzeIndexProbe(t *testing.T) {
	f := newFigure1(t)
	if err := f.db.CreateIndex("vw", mustClass(t, f, "Vehicle"), []string{"weight"}, true); err != nil {
		t.Fatal(err)
	}
	tx := f.db.Begin()
	defer tx.Commit()
	out, err := f.eng.ExplainAnalyze(tx, `SELECT * FROM Vehicle WHERE weight = 9000`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "probe vw") {
		t.Fatalf("ExplainAnalyze output missing index probe span:\n%s", out)
	}
	if !strings.Contains(out, "rows=1") {
		t.Fatalf("ExplainAnalyze output missing rows=1:\n%s", out)
	}
}

func mustClass(t *testing.T, f *figure1, name string) model.ClassID {
	t.Helper()
	cl, err := f.db.Catalog.ClassByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return cl.ID
}
