package query

import (
	"strings"
	"testing"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/schema"
)

// figure1 builds the paper's Figure 1 database: the Vehicle and Company
// hierarchies with manufacturers in several cities.
type figure1 struct {
	db                       *core.DB
	eng                      *Engine
	gm, toyota, freightliner model.OID
}

func newFigure1(t *testing.T) *figure1 {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })

	company, _ := db.DefineClass("Company", nil,
		schema.AttrSpec{Name: "name", Domain: schema.ClassString},
		schema.AttrSpec{Name: "location", Domain: schema.ClassString})
	autoCo, _ := db.DefineClass("AutoCompany", []model.ClassID{company.ID})
	db.DefineClass("TruckCompany", []model.ClassID{company.ID})
	db.DefineClass("JapaneseAutoCompany", []model.ClassID{autoCo.ID})

	vehicle, _ := db.DefineClass("Vehicle", nil,
		schema.AttrSpec{Name: "id", Domain: schema.ClassString},
		schema.AttrSpec{Name: "weight", Domain: schema.ClassInteger},
		schema.AttrSpec{Name: "manufacturer", Domain: company.ID})
	auto, _ := db.DefineClass("Automobile", []model.ClassID{vehicle.ID},
		schema.AttrSpec{Name: "drivetrain", Domain: schema.ClassString})
	db.DefineClass("Truck", []model.ClassID{vehicle.ID},
		schema.AttrSpec{Name: "payload", Domain: schema.ClassInteger})
	db.DefineClass("DomesticAutomobile", []model.ClassID{auto.ID})

	f := &figure1{db: db, eng: NewEngine(db)}
	err = db.Do(func(tx *core.Tx) error {
		var err error
		f.gm, err = tx.Insert("AutoCompany", map[string]model.Value{
			"name": model.String("GM"), "location": model.String("Detroit")})
		if err != nil {
			return err
		}
		f.toyota, _ = tx.Insert("JapaneseAutoCompany", map[string]model.Value{
			"name": model.String("Toyota"), "location": model.String("Toyota City")})
		f.freightliner, _ = tx.Insert("TruckCompany", map[string]model.Value{
			"name": model.String("Freightliner"), "location": model.String("Detroit")})

		type veh struct {
			class  string
			id     string
			weight int64
			maker  model.OID
		}
		for _, v := range []veh{
			{"Vehicle", "v1", 5000, f.gm},
			{"Automobile", "a1", 3000, f.gm},
			{"Automobile", "a2", 8000, f.toyota},
			{"DomesticAutomobile", "d1", 7600, f.gm},
			{"Truck", "t1", 9000, f.freightliner},
			{"Truck", "t2", 7000, f.freightliner},
		} {
			if _, err := tx.Insert(v.class, map[string]model.Value{
				"id": model.String(v.id), "weight": model.Int(v.weight),
				"manufacturer": model.Ref(v.maker),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// run executes a query in its own transaction and returns the ids of the
// matched vehicles.
func (f *figure1) run(t *testing.T, src string) []string {
	t.Helper()
	tx := f.db.Begin()
	defer tx.Commit()
	res, err := f.eng.Run(tx, src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	var ids []string
	for _, row := range res.Rows {
		v, err := f.db.AttrValue(row.Object, "id")
		if err != nil {
			// Non-vehicle result (e.g. Company); use name.
			v, _ = f.db.AttrValue(row.Object, "name")
		}
		s, _ := v.AsString()
		ids = append(ids, s)
	}
	return ids
}

func wantSet(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	set := map[string]bool{}
	for _, g := range got {
		set[g] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPaperExampleQuery(t *testing.T) {
	// "Find all vehicles that weigh more than 7500 lbs, and that are
	// manufactured by a company located in Detroit." (Kim §3.2)
	f := newFigure1(t)
	got := f.run(t, `SELECT * FROM Vehicle WHERE weight > 7500 AND manufacturer.location = 'Detroit'`)
	// d1 is 7600 & GM(Detroit); t1 is 9000 & Freightliner(Detroit).
	// a2 is 8000 but Toyota City. t2 is 7000.
	wantSet(t, got, "d1", "t1")
}

func TestHierarchyScopeDefault(t *testing.T) {
	f := newFigure1(t)
	// All six vehicles, across the whole hierarchy.
	got := f.run(t, `SELECT * FROM Vehicle`)
	wantSet(t, got, "v1", "a1", "a2", "d1", "t1", "t2")
}

func TestOnlyRestrictsScope(t *testing.T) {
	f := newFigure1(t)
	got := f.run(t, `SELECT * FROM ONLY Vehicle`)
	wantSet(t, got, "v1")
	got = f.run(t, `SELECT * FROM ONLY Automobile`)
	wantSet(t, got, "a1", "a2")
	// Automobile hierarchy includes DomesticAutomobile.
	got = f.run(t, `SELECT * FROM Automobile`)
	wantSet(t, got, "a1", "a2", "d1")
}

func TestNestedPredicateThroughSubclassMaker(t *testing.T) {
	f := newFigure1(t)
	// Toyota is a JapaneseAutoCompany — two levels below Company — yet the
	// nested predicate through the Company-typed attribute reaches it.
	got := f.run(t, `SELECT * FROM Vehicle WHERE manufacturer.name = 'Toyota'`)
	wantSet(t, got, "a2")
}

func TestComparisonOperators(t *testing.T) {
	f := newFigure1(t)
	wantSet(t, f.run(t, `SELECT * FROM Vehicle WHERE weight = 7000`), "t2")
	wantSet(t, f.run(t, `SELECT * FROM Vehicle WHERE weight != 7000`), "v1", "a1", "a2", "d1", "t1")
	wantSet(t, f.run(t, `SELECT * FROM Vehicle WHERE weight <= 5000`), "v1", "a1")
	wantSet(t, f.run(t, `SELECT * FROM Vehicle WHERE weight >= 8000`), "a2", "t1")
	wantSet(t, f.run(t, `SELECT * FROM Vehicle WHERE weight < 3001`), "a1")
	wantSet(t, f.run(t, `SELECT * FROM Vehicle WHERE 8000 < weight`), "t1")
}

func TestBooleanConnectives(t *testing.T) {
	f := newFigure1(t)
	wantSet(t, f.run(t, `SELECT * FROM Vehicle WHERE weight > 8500 OR weight < 4000`), "a1", "t1")
	wantSet(t, f.run(t, `SELECT * FROM Vehicle WHERE NOT weight > 5000`), "v1", "a1")
	wantSet(t, f.run(t, `SELECT * FROM Vehicle WHERE (weight > 6000 AND weight < 8000) OR id = 'a1'`), "d1", "t2", "a1")
}

func TestInList(t *testing.T) {
	f := newFigure1(t)
	wantSet(t, f.run(t, `SELECT * FROM Vehicle WHERE id IN ('a1', 't2', 'zzz')`), "a1", "t2")
}

func TestOrderByAndLimit(t *testing.T) {
	f := newFigure1(t)
	got := f.run(t, `SELECT * FROM Vehicle ORDER BY weight DESC LIMIT 3`)
	if len(got) != 3 || got[0] != "t1" || got[1] != "a2" || got[2] != "d1" {
		t.Fatalf("got %v", got)
	}
	got = f.run(t, `SELECT * FROM Vehicle ORDER BY weight LIMIT 2`)
	if len(got) != 2 || got[0] != "a1" || got[1] != "v1" {
		t.Fatalf("got %v", got)
	}
}

func TestProjection(t *testing.T) {
	f := newFigure1(t)
	tx := f.db.Begin()
	defer tx.Commit()
	res, err := f.eng.Run(tx, `SELECT id, weight, manufacturer.location FROM Truck ORDER BY weight`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 3 || res.Cols[2] != "manufacturer.location" {
		t.Fatalf("cols = %v", res.Cols)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if s, _ := res.Rows[0].Values[0].AsString(); s != "t2" {
		t.Errorf("row0 id = %v", res.Rows[0].Values[0])
	}
	if s, _ := res.Rows[0].Values[2].AsString(); s != "Detroit" {
		t.Errorf("row0 location = %v", res.Rows[0].Values[2])
	}
}

func TestMethodAsDerivedAttribute(t *testing.T) {
	f := newFigure1(t)
	vehicle, _ := f.db.Catalog.ClassByName("Vehicle")
	err := f.db.AddMethod(vehicle.ID, "heavy", func(eng schema.MethodEngine, recv *model.Object, _ []model.Value) (model.Value, error) {
		w, err := f.db.AttrValue(recv, "weight")
		if err != nil {
			return model.Null, err
		}
		n, _ := w.AsInt()
		return model.Bool(n > 7500), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := f.run(t, `SELECT * FROM Vehicle WHERE heavy = true`)
	wantSet(t, got, "a2", "d1", "t1")
	// Bare truthy path.
	got = f.run(t, `SELECT * FROM Vehicle WHERE heavy`)
	wantSet(t, got, "a2", "d1", "t1")
}

func TestQueryAgainstCompanyHierarchy(t *testing.T) {
	f := newFigure1(t)
	got := f.run(t, `SELECT * FROM Company WHERE location = 'Detroit'`)
	wantSet(t, got, "GM", "Freightliner")
	got = f.run(t, `SELECT * FROM AutoCompany`)
	wantSet(t, got, "GM", "Toyota")
}

func TestPlannerPicksCHIndex(t *testing.T) {
	f := newFigure1(t)
	vehicle, _ := f.db.Catalog.ClassByName("Vehicle")
	if err := f.db.CreateIndex("vw", vehicle.ID, []string{"weight"}, true); err != nil {
		t.Fatal(err)
	}
	plan, err := f.eng.PlanQuery(mustParse(t, `SELECT * FROM Vehicle WHERE weight = 7000`))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.IndexUsed() || !strings.Contains(plan.String(), "index-eq(vw)") {
		t.Fatalf("plan = %s", plan)
	}
	// Range predicate uses index-range.
	plan, _ = f.eng.PlanQuery(mustParse(t, `SELECT * FROM Vehicle WHERE weight > 7500`))
	if !strings.Contains(plan.String(), "index-range(vw)") {
		t.Fatalf("plan = %s", plan)
	}
	// Results identical to scan.
	wantSet(t, f.run(t, `SELECT * FROM Vehicle WHERE weight > 7500 AND manufacturer.location = 'Detroit'`), "d1", "t1")
	// ONLY query can still use the CH index with a class filter.
	plan, _ = f.eng.PlanQuery(mustParse(t, `SELECT * FROM ONLY Truck WHERE weight = 7000`))
	if !plan.IndexUsed() {
		t.Fatalf("ONLY plan should use CH index: %s", plan)
	}
	wantSet(t, f.run(t, `SELECT * FROM ONLY Truck WHERE weight = 7000`), "t2")
}

func TestPlannerPicksNestedIndex(t *testing.T) {
	f := newFigure1(t)
	vehicle, _ := f.db.Catalog.ClassByName("Vehicle")
	if err := f.db.CreateIndex("vloc", vehicle.ID, []string{"manufacturer", "location"}, true); err != nil {
		t.Fatal(err)
	}
	plan, err := f.eng.PlanQuery(mustParse(t, `SELECT * FROM Vehicle WHERE manufacturer.location = 'Detroit'`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "index-eq(vloc)") {
		t.Fatalf("plan = %s", plan)
	}
	wantSet(t, f.run(t, `SELECT * FROM Vehicle WHERE manufacturer.location = 'Detroit'`),
		"v1", "a1", "d1", "t1", "t2")
}

func TestPlannerUnionOfSCIndexes(t *testing.T) {
	f := newFigure1(t)
	// One single-class index per class in the Vehicle hierarchy — the
	// baseline organization of experiment E1.
	for _, name := range []string{"Vehicle", "Automobile", "Truck", "DomesticAutomobile"} {
		cl, _ := f.db.Catalog.ClassByName(name)
		if err := f.db.CreateIndex("sc_"+name, cl.ID, []string{"weight"}, false); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := f.eng.PlanQuery(mustParse(t, `SELECT * FROM Vehicle WHERE weight = 7000`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "index-union-eq(4 indexes)") {
		t.Fatalf("plan = %s", plan)
	}
	wantSet(t, f.run(t, `SELECT * FROM Vehicle WHERE weight = 7000`), "t2")
}

func TestForceScanAblation(t *testing.T) {
	f := newFigure1(t)
	vehicle, _ := f.db.Catalog.ClassByName("Vehicle")
	f.db.CreateIndex("vw", vehicle.ID, []string{"weight"}, true)
	f.eng.ForceScan = true
	plan, _ := f.eng.PlanQuery(mustParse(t, `SELECT * FROM Vehicle WHERE weight = 7000`))
	if plan.IndexUsed() {
		t.Fatal("ForceScan ignored")
	}
	wantSet(t, f.run(t, `SELECT * FROM Vehicle WHERE weight = 7000`), "t2")
}

func TestQueryErrors(t *testing.T) {
	f := newFigure1(t)
	tx := f.db.Begin()
	defer tx.Commit()
	cases := []string{
		`SELECT * FROM Nowhere`,
		`SELECT * FROM Vehicle WHERE nosuch = 1`,
		`SELECT nosuch FROM Vehicle`,
		`SELECT * FROM Vehicle ORDER BY nosuch`,
		`FROM Vehicle`,
		`SELECT * FROM Vehicle WHERE`,
		`SELECT * FROM Vehicle LIMIT x`,
		`SELECT * FROM Vehicle WHERE weight >`,
		`SELECT * FROM Vehicle trailing`,
	}
	for _, src := range cases {
		if _, err := f.eng.Run(tx, src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestParserRoundTrip(t *testing.T) {
	cases := []string{
		"SELECT * FROM Vehicle",
		"SELECT * FROM ONLY Vehicle",
		"SELECT id, weight FROM Vehicle WHERE (weight > 7500 AND manufacturer.location = \"Detroit\") ORDER BY weight DESC LIMIT 10",
		"SELECT * FROM Vehicle WHERE id IN ('a', 'b')",
		"SELECT * FROM Doc WHERE tags CONTAINS 'db'",
		"SELECT * FROM Vehicle WHERE NOT weight < 5",
	}
	for _, src := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		// Re-parsing the canonical form reproduces it.
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("canonical %q: %v", q.String(), err)
		}
		if q.String() != q2.String() {
			t.Errorf("round trip: %q != %q", q.String(), q2.String())
		}
	}
}

func TestStringEscapes(t *testing.T) {
	q, err := Parse(`SELECT * FROM C WHERE name = 'O''Hare'`)
	if err != nil {
		t.Fatal(err)
	}
	b := q.Where.(*Binary)
	lit := b.R.(*Lit)
	if s, _ := lit.V.AsString(); s != "O'Hare" {
		t.Errorf("escaped string = %q", s)
	}
}

func TestNullComparisons(t *testing.T) {
	f := newFigure1(t)
	// A vehicle with no manufacturer.
	f.db.Do(func(tx *core.Tx) error {
		_, err := tx.Insert("Vehicle", map[string]model.Value{
			"id": model.String("orphan"), "weight": model.Int(1)})
		return err
	})
	// Nested predicate through the null reference is simply false.
	got := f.run(t, `SELECT * FROM Vehicle WHERE manufacturer.location = 'Detroit'`)
	wantSet(t, got, "v1", "a1", "d1", "t1", "t2")
	// Existence test.
	got = f.run(t, `SELECT * FROM Vehicle WHERE manufacturer = null AND weight = 1`)
	wantSet(t, got, "orphan")
	// Ordering comparisons against null are false, not true.
	got = f.run(t, `SELECT * FROM Vehicle WHERE manufacturer.location < 'ZZZ'`)
	wantSet(t, got, "v1", "a1", "a2", "d1", "t1", "t2")
}

func TestContainsOnSetAttribute(t *testing.T) {
	db, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	doc, _ := db.DefineClass("Doc", nil,
		schema.AttrSpec{Name: "title", Domain: schema.ClassString},
		schema.AttrSpec{Name: "tags", Domain: schema.ClassString, SetValued: true})
	_ = doc
	db.Do(func(tx *core.Tx) error {
		tx.Insert("Doc", map[string]model.Value{
			"title": model.String("one"),
			"tags":  model.Set(model.String("db"), model.String("oo"))})
		tx.Insert("Doc", map[string]model.Value{
			"title": model.String("two"),
			"tags":  model.Set(model.String("ai"))})
		return nil
	})
	eng := NewEngine(db)
	tx := db.Begin()
	defer tx.Commit()
	res, err := eng.Run(tx, `SELECT title FROM Doc WHERE tags CONTAINS 'db'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if s, _ := res.Rows[0].Values[0].AsString(); s != "one" {
		t.Errorf("title = %v", res.Rows[0].Values[0])
	}
}

func TestLimitWithoutOrderShortCircuits(t *testing.T) {
	f := newFigure1(t)
	got := f.run(t, `SELECT * FROM Vehicle LIMIT 2`)
	if len(got) != 2 {
		t.Fatalf("got %d rows", len(got))
	}
}

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
