package query

import (
	"fmt"
	"strconv"
	"strings"

	"oodb/internal/model"
)

// Parse parses a SELECT statement.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("query: trailing input at %q", p.peek().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// keyword consumes an identifier equal (case-insensitively) to kw.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("query: expected %s near %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) symbol(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.pos++
		return true
	}
	return false
}

var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "only": true,
	"and": true, "or": true, "not": true, "contains": true, "in": true,
	"order": true, "by": true, "asc": true, "desc": true, "limit": true,
	"true": true, "false": true, "null": true,
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent || reserved[strings.ToLower(t.text)] {
		return "", fmt.Errorf("query: expected identifier near %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := &Query{}
	if p.symbol("*") {
		// SELECT *
	} else if agg, ok := p.peekAggFunc(); ok {
		_ = agg
		for {
			item, err := p.parseAggregate()
			if err != nil {
				return nil, err
			}
			q.Aggregates = append(q.Aggregates, item)
			if !p.symbol(",") {
				break
			}
		}
	} else {
		for {
			path, err := p.parsePath()
			if err != nil {
				return nil, err
			}
			q.Select = append(q.Select, path)
			if !p.symbol(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	if p.keyword("only") {
		q.Only = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, fmt.Errorf("query: expected class name: %w", err)
	}
	q.From = name
	if p.keyword("where") {
		expr, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = expr
	}
	if p.keyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		q.OrderBy = &path
		if p.keyword("desc") {
			q.Desc = true
		} else {
			p.keyword("asc")
		}
	}
	if p.keyword("limit") {
		t := p.peek()
		if t.kind != tokInt {
			return nil, fmt.Errorf("query: LIMIT expects an integer, got %q", t.text)
		}
		p.pos++
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("query: bad LIMIT %q", t.text)
		}
		q.Limit = n
	}
	return q, nil
}

// aggFuncs maps (lower-cased) aggregate function names.
var aggFuncs = map[string]AggFunc{
	"count": AggCount, "sum": AggSum, "avg": AggAvg, "min": AggMin, "max": AggMax,
}

// peekAggFunc reports whether the cursor sits on an aggregate call:
// an aggregate name immediately followed by '('. A bare identifier that
// happens to be named "count" stays an ordinary path.
func (p *parser) peekAggFunc() (AggFunc, bool) {
	t := p.peek()
	if t.kind != tokIdent {
		return 0, false
	}
	f, ok := aggFuncs[strings.ToLower(t.text)]
	if !ok {
		return 0, false
	}
	nxt := p.toks[p.pos+1]
	if nxt.kind != tokSymbol || nxt.text != "(" {
		return 0, false
	}
	return f, true
}

// parseAggregate parses FUNC(* | path).
func (p *parser) parseAggregate() (AggItem, error) {
	f, ok := p.peekAggFunc()
	if !ok {
		return AggItem{}, fmt.Errorf("query: expected aggregate near %q", p.peek().text)
	}
	p.pos++ // function name
	p.pos++ // '('
	var item = AggItem{Func: f}
	if p.symbol("*") {
		if f != AggCount {
			return AggItem{}, fmt.Errorf("query: %s(*) is not valid; only COUNT(*)", f)
		}
	} else {
		path, err := p.parsePath()
		if err != nil {
			return AggItem{}, err
		}
		item.Path = &path
	}
	if !p.symbol(")") {
		return AggItem{}, fmt.Errorf("query: aggregate missing ) near %q", p.peek().text)
	}
	return item, nil
}

func (p *parser) parsePath() (Path, error) {
	first, err := p.ident()
	if err != nil {
		return Path{}, err
	}
	path := Path{Steps: []string{first}}
	for p.symbol(".") {
		step, err := p.ident()
		if err != nil {
			return Path{}, err
		}
		path.Steps = append(path.Steps, step)
	}
	return path, nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.keyword("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	if p.symbol("(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.symbol(")") {
			return nil, fmt.Errorf("query: missing ) near %q", p.peek().text)
		}
		return e, nil
	}
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	var op BinOp
	switch {
	case t.kind == tokSymbol && t.text == "=":
		op = OpEq
	case t.kind == tokSymbol && (t.text == "!=" || t.text == "<>"):
		op = OpNe
	case t.kind == tokSymbol && t.text == "<":
		op = OpLt
	case t.kind == tokSymbol && t.text == "<=":
		op = OpLe
	case t.kind == tokSymbol && t.text == ">":
		op = OpGt
	case t.kind == tokSymbol && t.text == ">=":
		op = OpGe
	case t.kind == tokIdent && strings.EqualFold(t.text, "contains"):
		op = OpContains
	case t.kind == tokIdent && strings.EqualFold(t.text, "in"):
		op = OpIn
	default:
		// Bare path: truthy boolean attribute.
		return left, nil
	}
	p.pos++
	if op == OpIn {
		list, err := p.parseList()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: OpIn, L: left, R: list}, nil
	}
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &Binary{Op: op, L: left, R: right}, nil
}

func (p *parser) parseList() (Expr, error) {
	if !p.symbol("(") {
		return nil, fmt.Errorf("query: IN expects ( near %q", p.peek().text)
	}
	var items []model.Value
	for {
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		items = append(items, lit)
		if p.symbol(",") {
			continue
		}
		break
	}
	if !p.symbol(")") {
		return nil, fmt.Errorf("query: IN list missing ) near %q", p.peek().text)
	}
	return &List{Items: items}, nil
}

func (p *parser) parseOperand() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokInt, t.kind == tokFloat, t.kind == tokString:
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &Lit{V: v}, nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "true"):
		p.pos++
		return &Lit{V: model.Bool(true)}, nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "false"):
		p.pos++
		return &Lit{V: model.Bool(false)}, nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "null"):
		p.pos++
		return &Lit{V: model.Null}, nil
	case t.kind == tokIdent:
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		return &PathExpr{Path: path}, nil
	default:
		return nil, fmt.Errorf("query: expected operand near %q", t.text)
	}
}

func (p *parser) parseLiteral() (model.Value, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return model.Null, fmt.Errorf("query: bad integer %q", t.text)
		}
		return model.Int(n), nil
	case tokFloat:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return model.Null, fmt.Errorf("query: bad float %q", t.text)
		}
		return model.Float(f), nil
	case tokString:
		return model.String(t.text), nil
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "true":
			return model.Bool(true), nil
		case "false":
			return model.Bool(false), nil
		case "null":
			return model.Null, nil
		}
	}
	return model.Null, fmt.Errorf("query: expected literal near %q", t.text)
}
