package query

import (
	"fmt"
	"strings"

	"oodb/internal/model"
)

// Query is a parsed SELECT statement.
type Query struct {
	Select     []Path    // empty means * (unless Aggregates is set)
	Aggregates []AggItem // aggregate select list (exclusive with Select)
	From       string    // target class name
	Only       bool      // restrict to the target class, excluding subclasses
	Where      Expr      // nil if absent
	OrderBy    *Path
	Desc       bool
	Limit      int // 0 = no limit
}

// AggFunc enumerates aggregate functions.
type AggFunc int

// The aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	default:
		return "MAX"
	}
}

// AggItem is one aggregate in the select list. A nil Path means COUNT(*).
type AggItem struct {
	Func AggFunc
	Path *Path
}

func (a AggItem) String() string {
	if a.Path == nil {
		return a.Func.String() + "(*)"
	}
	return a.Func.String() + "(" + a.Path.String() + ")"
}

// Path is an attribute (or method) path rooted at the target class:
// manufacturer.location, weight, describe.
type Path struct {
	Steps []string
}

func (p Path) String() string { return strings.Join(p.Steps, ".") }

// Expr is a boolean or value expression node.
type Expr interface {
	exprString() string
}

// BinOp enumerates comparison and logical operators.
type BinOp int

// The operators.
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpContains // set-valued attribute membership
	OpIn       // value IN (lit, lit, ...)
)

func (op BinOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpContains:
		return "CONTAINS"
	case OpIn:
		return "IN"
	default:
		return "?"
	}
}

// Binary is a binary expression.
type Binary struct {
	Op   BinOp
	L, R Expr
}

func (b *Binary) exprString() string {
	return fmt.Sprintf("(%s %s %s)", b.L.exprString(), b.Op, b.R.exprString())
}

// Not negates its operand.
type Not struct{ E Expr }

func (n *Not) exprString() string { return fmt.Sprintf("(NOT %s)", n.E.exprString()) }

// PathExpr evaluates a path against the candidate object.
type PathExpr struct{ Path Path }

func (p *PathExpr) exprString() string { return p.Path.String() }

// Lit is a literal value.
type Lit struct{ V model.Value }

func (l *Lit) exprString() string { return l.V.String() }

// List is a literal list (the right side of IN).
type List struct{ Items []model.Value }

func (l *List) exprString() string {
	parts := make([]string, len(l.Items))
	for i, v := range l.Items {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// String renders the query canonically (tests and EXPLAIN).
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if len(q.Aggregates) > 0 {
		parts := make([]string, len(q.Aggregates))
		for i, a := range q.Aggregates {
			parts[i] = a.String()
		}
		sb.WriteString(strings.Join(parts, ", "))
	} else if len(q.Select) == 0 {
		sb.WriteString("*")
	} else {
		parts := make([]string, len(q.Select))
		for i, p := range q.Select {
			parts[i] = p.String()
		}
		sb.WriteString(strings.Join(parts, ", "))
	}
	sb.WriteString(" FROM ")
	if q.Only {
		sb.WriteString("ONLY ")
	}
	sb.WriteString(q.From)
	if q.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(q.Where.exprString())
	}
	if q.OrderBy != nil {
		sb.WriteString(" ORDER BY ")
		sb.WriteString(q.OrderBy.String())
		if q.Desc {
			sb.WriteString(" DESC")
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	return sb.String()
}
