package query

import (
	"oodb/internal/obs"
)

// Query-executor metrics (obs registry). Row counts are accumulated
// locally per scan/probe and added once, not per row.
var (
	mRowsScanned  = obs.RegisterCounter("query_scan_rows_examined")
	mRowsMatched  = obs.RegisterCounter("query_scan_rows_matched")
	mIndexProbes  = obs.RegisterCounter("query_probe_index_lookups")
	mEarlyExits   = obs.RegisterCounter("query_limit_early_exits")
	mFanoutWidth  = obs.RegisterHistogram("query_scan_fanout_width")
	mQueriesTotal = obs.RegisterCounter("query_exec_statements_total")
)
