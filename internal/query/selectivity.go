package query

import (
	"sort"

	"oodb/internal/model"
	"oodb/internal/stats"
)

// Selectivity estimation: the bridge between the maintenance subsystem's
// statistics (internal/stats, collected by internal/maint) and the
// planner's access-path choice. Kim §2.2 requires that the system, not the
// application, selects among access methods; statistics let that choice be
// quantitative — an index probe is only cheaper than a scan when the
// predicate is selective enough to amortize its random object fetches.
//
// Everything here is advisory and strictly additive: with no statistics
// (or statistics covering only part of the scope) the planner's heuristic
// ranking is byte-identical to what it was before this file existed.

const (
	// defaultRangeSelectivity is the textbook guess for a range predicate
	// whose bounds cannot be interpolated against the attribute's min/max.
	defaultRangeSelectivity = 1.0 / 3
	// probeCostFactor weighs an index-probed row against a scanned row: a
	// posting costs a random object fetch where a scan reads pages
	// sequentially, so a probe must be this many times more selective than
	// the full scan to win on cost.
	probeCostFactor = 4.0
)

// estimator is a per-plan view of the statistics registry. It exists only
// when every class in the plan scope has been analyzed: partial statistics
// would bias the comparison between covered and uncovered classes, so the
// planner falls back to its heuristic ranking instead.
type estimator struct {
	reg   *stats.Registry
	scope []model.ClassID
}

// newEstimator returns an estimator for the scope, or nil if any scope
// class lacks statistics.
func (e *Engine) newEstimator(scope []model.ClassID) *estimator {
	reg := e.db.Stats
	if reg == nil {
		return nil
	}
	for _, c := range scope {
		if reg.Get(c) == nil {
			return nil
		}
	}
	return &estimator{reg: reg, scope: scope}
}

// totalCard is the estimated instance count over the whole scope.
func (est *estimator) totalCard() float64 {
	var n float64
	for _, c := range est.scope {
		n += float64(est.reg.Get(c).Cardinality)
	}
	return n
}

// sargAttr maps a resolved sarg path to the attribute its statistics live
// under. Only single-step paths qualify: a multi-step path's terminal
// distribution belongs to another class's instances and says nothing
// per-scope-class.
func sargAttr(attrPath []model.AttrID) (model.AttrID, bool) {
	if len(attrPath) != 1 {
		return 0, false
	}
	return attrPath[0], true
}

// classRows estimates how many instances of class c satisfy the sarg.
// An attribute with no summary was never observed non-null, so a non-null
// comparison matches nothing.
func (est *estimator) classRows(c model.ClassID, s sarg, attr model.AttrID) float64 {
	as := est.reg.Get(c).Attr(attr)
	if as == nil || as.Count == 0 {
		return 0
	}
	if s.op == OpEq {
		d := float64(as.Distinct)
		if d < 1 {
			d = 1
		}
		return float64(as.Count) / d
	}
	return float64(as.Count) * rangeFraction(as, s)
}

// rangeFraction estimates what fraction of an attribute's observed values a
// range sarg admits, by linear interpolation against the observed min/max
// when both are numeric, and the default guess otherwise.
func rangeFraction(as *stats.AttrStats, s sarg) float64 {
	lo, okLo := as.Min.AsFloat()
	hi, okHi := as.Max.AsFloat()
	v, okV := s.lit.AsFloat()
	if !okLo || !okHi || !okV {
		return defaultRangeSelectivity
	}
	if hi <= lo {
		// Degenerate domain: one observed value — the comparison either
		// admits it or not.
		if compareOp(s.op, as.Min, s.lit) {
			return 1
		}
		return 0
	}
	var f float64
	switch s.op {
	case OpGt, OpGe:
		f = (hi - v) / (hi - lo)
	case OpLt, OpLe:
		f = (v - lo) / (hi - lo)
	default:
		return defaultRangeSelectivity
	}
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// estimableSargs resolves the predicate's sargs to the attributes their
// statistics live under, dropping the inestimable ones.
type estSarg struct {
	s    sarg
	attr model.AttrID
}

func (e *Engine) estimableSargs(p *Plan) []estSarg {
	if p.Query.Where == nil {
		return nil
	}
	var out []estSarg
	for _, s := range extractSargs(p.Query.Where) {
		attrPath, ok := e.resolveAttrPath(p.Target.ID, s.path)
		if !ok {
			continue
		}
		if attr, ok := sargAttr(attrPath); ok {
			out = append(out, estSarg{s: s, attr: attr})
		}
	}
	return out
}

// predicateRows estimates the plan's result cardinality: per scope class,
// the estimable sargs' selectivities combine multiplicatively (the usual
// independence assumption) and inestimable conjuncts contribute factor 1
// (an overestimate, which is the safe direction for access-path choice).
func (est *estimator) predicateRows(sargs []estSarg) float64 {
	var total float64
	for _, c := range est.scope {
		card := float64(est.reg.Get(c).Cardinality)
		rows := card
		for _, es := range sargs {
			if card == 0 {
				rows = 0
				break
			}
			rows *= est.classRows(c, es.s, es.attr) / card
		}
		total += rows
	}
	return total
}

// annotatePlan runs after access-path selection: it records the result
// cardinality estimate on the plan (rendered by EXPLAIN next to actual
// rows) and, for a heap scan that may exit early on LIMIT, reorders the
// scope so the classes expected to contribute the most matches are scanned
// first — the fan-out visits fewer classes before the limit fills.
func (e *Engine) annotatePlan(p *Plan) {
	est := e.newEstimator(p.Scope)
	if est == nil {
		return
	}
	sargs := e.estimableSargs(p)
	p.EstRows = est.predicateRows(sargs)
	p.HasEst = true
	if p.kind != accessScan || len(p.Scope) < 2 || len(sargs) == 0 {
		return
	}
	if p.Query.Limit == 0 || p.Query.OrderBy != nil {
		return // every match is needed: scope order is irrelevant to cost
	}
	perClass := make(map[model.ClassID]float64, len(p.Scope))
	for _, c := range p.Scope {
		card := float64(est.reg.Get(c).Cardinality)
		rows := card
		for _, es := range sargs {
			if card == 0 {
				rows = 0
				break
			}
			rows *= est.classRows(c, es.s, es.attr) / card
		}
		perClass[c] = rows
	}
	sort.SliceStable(p.Scope, func(i, j int) bool {
		return perClass[p.Scope[i]] > perClass[p.Scope[j]]
	})
}
