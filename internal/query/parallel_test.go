package query

import (
	"fmt"
	"reflect"
	"testing"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/schema"
)

// newScanHierarchy builds a three-level hierarchy with interleaved values,
// sized so every class spans several heap pages.
func newScanHierarchy(t *testing.T) *core.DB {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	root, err := db.DefineClass("S0", nil,
		schema.AttrSpec{Name: "val", Domain: schema.ClassInteger},
		schema.AttrSpec{Name: "tag", Domain: schema.ClassString})
	if err != nil {
		t.Fatal(err)
	}
	classes := []model.ClassID{root.ID}
	for m := 0; m < 3; m++ {
		mid, err := db.DefineClass(fmt.Sprintf("S0_%d", m), []model.ClassID{root.ID})
		if err != nil {
			t.Fatal(err)
		}
		classes = append(classes, mid.ID)
		for l := 0; l < 2; l++ {
			leaf, err := db.DefineClass(fmt.Sprintf("S0_%d_%d", m, l), []model.ClassID{mid.ID})
			if err != nil {
				t.Fatal(err)
			}
			classes = append(classes, leaf.ID)
		}
	}
	err = db.Do(func(tx *core.Tx) error {
		for ci, c := range classes {
			for i := 0; i < 60; i++ {
				if _, err := tx.InsertClass(c, map[string]model.Value{
					"val": model.Int(int64((i*7 + ci) % 100)),
					"tag": model.String(fmt.Sprintf("c%d-%d", ci, i)),
				}); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestParallelScanMatchesSerial runs a spread of hierarchy-scoped queries
// through the parallel executor and the SerialScan ablation and requires
// identical results — rows, ordering and limits included. This is the
// acceptance gate for the parallel fan-out: the concurrency must be
// invisible in the results.
func TestParallelScanMatchesSerial(t *testing.T) {
	db := newScanHierarchy(t)
	queries := []string{
		`SELECT * FROM S0`,
		`SELECT tag FROM S0 WHERE val < 50`,
		`SELECT tag FROM S0 WHERE val >= 30 AND val < 70`,
		`SELECT * FROM S0 LIMIT 7`,
		`SELECT tag FROM S0 WHERE val < 50 LIMIT 25`,
		`SELECT tag FROM S0 WHERE val < 5 LIMIT 1000`,
		`SELECT tag FROM S0 ORDER BY tag`,
		`SELECT tag FROM S0 WHERE val > 20 ORDER BY tag DESC LIMIT 13`,
		`SELECT val FROM S0 ORDER BY val LIMIT 40`,
		`SELECT COUNT(*) FROM S0 WHERE val < 33`,
		`SELECT SUM(val), MIN(val), MAX(val) FROM S0`,
		`SELECT * FROM ONLY S0_1`,
		`SELECT tag FROM S0_2 WHERE val = 44`,
	}
	parallel := NewEngine(db)
	serial := NewEngine(db)
	serial.SerialScan = true
	for _, q := range queries {
		got := runResult(t, db, parallel, q)
		want := runResult(t, db, serial, q)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s:\nparallel: %+v\nserial:   %+v", q, got, want)
		}
	}
}

// runResult executes q and flattens the result into comparable rows
// (OID + projected values).
func runResult(t *testing.T, db *core.DB, eng *Engine, q string) [][]string {
	t.Helper()
	tx := db.Begin()
	defer tx.Commit()
	res, err := eng.Run(tx, q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	out := make([][]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		r := []string{row.OID.String()}
		for _, v := range row.Values {
			r = append(r, v.String())
		}
		out = append(out, r)
	}
	return out
}

// TestParallelScanLimitEarlyExit checks that a limited, unordered
// hierarchy query returns exactly the rows the sequential executor would:
// the first `limit` matches in scope order.
func TestParallelScanLimitEarlyExit(t *testing.T) {
	db := newScanHierarchy(t)
	eng := NewEngine(db)
	for _, limit := range []int{1, 10, 59, 60, 61, 200} {
		q := fmt.Sprintf(`SELECT tag FROM S0 LIMIT %d`, limit)
		serial := NewEngine(db)
		serial.SerialScan = true
		got := runResult(t, db, eng, q)
		want := runResult(t, db, serial, q)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("limit %d: parallel %v != serial %v", limit, got, want)
		}
		if len(got) != limit && len(got) != 600 { // 10 classes x 60 objects
			if limit < 600 {
				t.Errorf("limit %d returned %d rows", limit, len(got))
			}
		}
	}
}
