// Package views implements views for an object-oriented database — the
// facility the paper calls out as wholly unexplored ("to the best of our
// knowledge, no object-oriented database system supports views at this
// time", §5.4).
//
// A view is a named, stored query defining a virtual class: running the
// view yields the objects (and projections) its query selects. Views serve
// the three uses the paper lists:
//
//   - shorthand for queries (Run);
//   - logical partitioning of a class's instances (a view over `FROM C
//     WHERE p` names the p-partition of C);
//   - content-based authorization (Visible: an object is visible through
//     a view iff it satisfies the view's predicate) — combine with
//     internal/authz to grant roles access to views instead of classes;
//   - a lightweight form of schema versioning (Redefine lets applications
//     experiment with a changed shape without touching stored classes).
package views

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/query"
	"oodb/internal/schema"
)

// Errors of the view layer.
var (
	ErrViewExists = errors.New("views: view already exists")
	ErrNoSuchView = errors.New("views: no such view")
)

const defClassName = "ViewDef"

// Manager stores and executes view definitions.
type Manager struct {
	db  *core.DB
	eng *query.Engine

	mu    sync.RWMutex
	defs  map[string]string    // name -> query source
	oids  map[string]model.OID // name -> persisted definition object
	class *schema.Class
}

// New creates (or re-attaches) the view layer.
func New(db *core.DB) (*Manager, error) {
	m := &Manager{
		db:   db,
		eng:  query.NewEngine(db),
		defs: make(map[string]string),
		oids: make(map[string]model.OID),
	}
	cl, err := db.Catalog.ClassByName(defClassName)
	if errors.Is(err, schema.ErrNoSuchClass) {
		cl, err = db.DefineClass(defClassName, nil,
			schema.AttrSpec{Name: "name", Domain: schema.ClassString},
			schema.AttrSpec{Name: "source", Domain: schema.ClassString},
		)
	}
	if err != nil {
		return nil, err
	}
	m.class = cl
	// Wire view-name resolution into the query engine: FROM <ViewName>
	// plans as the view's query merged with the outer query.
	m.eng.Views = m.lookup
	err = db.Store.ScanClass(cl.ID, func(oid model.OID, data []byte) bool {
		obj, derr := model.DecodeObject(data)
		if derr != nil {
			return true
		}
		nv, _ := db.AttrValue(obj, "name")
		sv, _ := db.AttrValue(obj, "source")
		name, _ := nv.AsString()
		src, _ := sv.AsString()
		if name != "" {
			m.defs[name] = src
			m.oids[name] = oid
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Define stores a view. The query is validated (parsed and planned, with
// this definition visible to itself so self-references are caught) before
// the definition is persisted.
func (m *Manager) Define(name, src string) error {
	if err := m.validateAs(name, src); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.defs[name]; dup {
		return fmt.Errorf("%w: %q", ErrViewExists, name)
	}
	var oid model.OID
	err := m.db.Do(func(tx *core.Tx) error {
		var err error
		oid, err = tx.InsertClass(m.class.ID, map[string]model.Value{
			"name":   model.String(name),
			"source": model.String(src),
		})
		return err
	})
	if err != nil {
		return err
	}
	m.defs[name] = src
	m.oids[name] = oid
	return nil
}

// validateAs parses and plans src as the definition of view name, with
// that definition already shadowed into the resolver — so a view that
// references itself (directly or through another view) fails validation
// instead of recursing at run time.
func (m *Manager) validateAs(name, src string) error {
	q, err := query.Parse(src)
	if err != nil {
		return err
	}
	eng := query.NewEngine(m.db)
	eng.Views = func(n string) (string, bool) {
		if n == name {
			return src, true
		}
		return m.lookup(n)
	}
	_, err = eng.PlanQuery(q)
	return err
}

// Redefine replaces a view's query — the schema-versioning use of views:
// consumers keep the view name while the definition evolves.
func (m *Manager) Redefine(name, src string) error {
	if err := m.validateAs(name, src); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	oid, ok := m.oids[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchView, name)
	}
	err := m.db.Do(func(tx *core.Tx) error {
		return tx.Update(oid, map[string]model.Value{"source": model.String(src)})
	})
	if err != nil {
		return err
	}
	m.defs[name] = src
	return nil
}

// Drop removes a view.
func (m *Manager) Drop(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oid, ok := m.oids[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchView, name)
	}
	err := m.db.Do(func(tx *core.Tx) error { return tx.Delete(oid) })
	if err != nil {
		return err
	}
	delete(m.defs, name)
	delete(m.oids, name)
	return nil
}

// Source returns a view's query text.
func (m *Manager) Source(name string) (string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	src, ok := m.defs[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNoSuchView, name)
	}
	return src, nil
}

// Names lists defined views.
func (m *Manager) Names() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.defs))
	for n := range m.defs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// lookup implements query.Engine.Views.
func (m *Manager) lookup(name string) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	src, ok := m.defs[name]
	return src, ok
}

// AttachTo wires this manager's views into another query engine so its
// queries can use FROM <ViewName> too.
func (m *Manager) AttachTo(eng *query.Engine) {
	eng.Views = m.lookup
}

// Run executes the view as a query inside tx.
func (m *Manager) Run(tx *core.Tx, name string) (*query.Result, error) {
	src, err := m.Source(name)
	if err != nil {
		return nil, err
	}
	return m.eng.Run(tx, src)
}

// Visible reports whether oid is visible through the view — the
// content-based authorization predicate: a role granted access via this
// view sees exactly the objects the view selects.
func (m *Manager) Visible(tx *core.Tx, name string, oid model.OID) (bool, error) {
	res, err := m.Run(tx, name)
	if err != nil {
		return false, err
	}
	for _, row := range res.Rows {
		if row.OID == oid {
			return true, nil
		}
	}
	return false, nil
}
