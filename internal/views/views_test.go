package views

import (
	"errors"
	"testing"

	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/schema"
)

type world struct {
	db           *core.DB
	vm           *Manager
	heavy, light model.OID
}

func newWorld(t *testing.T) *world {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	vehicle, _ := db.DefineClass("Vehicle", nil,
		schema.AttrSpec{Name: "id", Domain: schema.ClassString},
		schema.AttrSpec{Name: "weight", Domain: schema.ClassInteger})
	db.DefineClass("Truck", []model.ClassID{vehicle.ID})
	vm, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	w := &world{db: db, vm: vm}
	db.Do(func(tx *core.Tx) error {
		w.heavy, _ = tx.Insert("Truck", map[string]model.Value{
			"id": model.String("t1"), "weight": model.Int(9000)})
		w.light, _ = tx.Insert("Vehicle", map[string]model.Value{
			"id": model.String("v1"), "weight": model.Int(900)})
		return nil
	})
	return w
}

func TestDefineAndRun(t *testing.T) {
	w := newWorld(t)
	if err := w.vm.Define("HeavyVehicles", `SELECT * FROM Vehicle WHERE weight > 7500`); err != nil {
		t.Fatal(err)
	}
	tx := w.db.Begin()
	defer tx.Commit()
	res, err := w.vm.Run(tx, "HeavyVehicles")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].OID != w.heavy {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

func TestDefineValidates(t *testing.T) {
	w := newWorld(t)
	if err := w.vm.Define("bad", `SELECT * FROM Nowhere`); err == nil {
		t.Fatal("invalid view accepted")
	}
	if err := w.vm.Define("bad", `garbage`); err == nil {
		t.Fatal("unparseable view accepted")
	}
	if len(w.vm.Names()) != 0 {
		t.Fatal("failed define left state")
	}
}

func TestDuplicateAndDrop(t *testing.T) {
	w := newWorld(t)
	w.vm.Define("v", `SELECT * FROM Vehicle`)
	if err := w.vm.Define("v", `SELECT * FROM Vehicle`); !errors.Is(err, ErrViewExists) {
		t.Fatalf("expected ErrViewExists, got %v", err)
	}
	if err := w.vm.Drop("v"); err != nil {
		t.Fatal(err)
	}
	if err := w.vm.Drop("v"); !errors.Is(err, ErrNoSuchView) {
		t.Fatalf("expected ErrNoSuchView, got %v", err)
	}
}

func TestVisibleContentBasedAuthorization(t *testing.T) {
	w := newWorld(t)
	w.vm.Define("HeavyVehicles", `SELECT * FROM Vehicle WHERE weight > 7500`)
	tx := w.db.Begin()
	defer tx.Commit()
	ok, err := w.vm.Visible(tx, "HeavyVehicles", w.heavy)
	if err != nil || !ok {
		t.Fatalf("heavy not visible: %v %v", ok, err)
	}
	ok, _ = w.vm.Visible(tx, "HeavyVehicles", w.light)
	if ok {
		t.Fatal("light vehicle visible through heavy view")
	}
}

func TestViewReflectsCurrentData(t *testing.T) {
	w := newWorld(t)
	w.vm.Define("HeavyVehicles", `SELECT * FROM Vehicle WHERE weight > 7500`)
	// Views are virtual: new matching objects appear immediately.
	w.db.Do(func(tx *core.Tx) error {
		_, err := tx.Insert("Vehicle", map[string]model.Value{
			"id": model.String("v2"), "weight": model.Int(8000)})
		return err
	})
	tx := w.db.Begin()
	defer tx.Commit()
	res, _ := w.vm.Run(tx, "HeavyVehicles")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestRedefine(t *testing.T) {
	w := newWorld(t)
	w.vm.Define("V", `SELECT * FROM Vehicle WHERE weight > 7500`)
	if err := w.vm.Redefine("V", `SELECT * FROM Vehicle WHERE weight < 7500`); err != nil {
		t.Fatal(err)
	}
	tx := w.db.Begin()
	defer tx.Commit()
	res, _ := w.vm.Run(tx, "V")
	if len(res.Rows) != 1 || res.Rows[0].OID != w.light {
		t.Fatalf("redefined view rows = %+v", res.Rows)
	}
	if err := w.vm.Redefine("missing", `SELECT * FROM Vehicle`); !errors.Is(err, ErrNoSuchView) {
		t.Fatalf("expected ErrNoSuchView, got %v", err)
	}
}

func TestViewsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	db, _ := core.Open(dir, core.Options{})
	db.DefineClass("Vehicle", nil,
		schema.AttrSpec{Name: "weight", Domain: schema.ClassInteger})
	vm, _ := New(db)
	vm.Define("Heavy", `SELECT * FROM Vehicle WHERE weight > 7500`)
	db.Do(func(tx *core.Tx) error {
		_, err := tx.Insert("Vehicle", map[string]model.Value{"weight": model.Int(9000)})
		return err
	})
	db.Close()

	db2, _ := core.Open(dir, core.Options{})
	defer db2.Close()
	vm2, err := New(db2)
	if err != nil {
		t.Fatal(err)
	}
	if len(vm2.Names()) != 1 || vm2.Names()[0] != "Heavy" {
		t.Fatalf("names after reopen = %v", vm2.Names())
	}
	tx := db2.Begin()
	defer tx.Commit()
	res, err := vm2.Run(tx, "Heavy")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("reopened view run = %v, %v", res, err)
	}
}

func TestProjectionViews(t *testing.T) {
	w := newWorld(t)
	w.vm.Define("IDs", `SELECT id FROM Vehicle ORDER BY weight DESC`)
	tx := w.db.Begin()
	defer tx.Commit()
	res, err := w.vm.Run(tx, "IDs")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 1 || res.Cols[0] != "id" {
		t.Fatalf("cols = %v", res.Cols)
	}
	if s, _ := res.Rows[0].Values[0].AsString(); s != "t1" {
		t.Fatalf("first row = %v", res.Rows[0].Values)
	}
}

func TestQueryFromView(t *testing.T) {
	// "A query may be issued against views just as though they were
	// relations" (Kim §5.4): FROM <ViewName> with further predicates.
	w := newWorld(t)
	if err := w.vm.Define("HeavyVehicles", `SELECT * FROM Vehicle WHERE weight > 7500`); err != nil {
		t.Fatal(err)
	}
	// Add more data so the composition is visible.
	w.db.Do(func(tx *core.Tx) error {
		tx.Insert("Truck", map[string]model.Value{
			"id": model.String("t2"), "weight": model.Int(8000)})
		return nil
	})
	tx := w.db.Begin()
	defer tx.Commit()
	eng := w.vm.eng

	// Bare view query.
	res, err := eng.Run(tx, `SELECT * FROM HeavyVehicles`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("FROM view rows = %d", len(res.Rows))
	}
	// Further restriction conjoins with the view's predicate.
	res, err = eng.Run(tx, `SELECT id FROM HeavyVehicles WHERE weight > 8500`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("restricted view rows = %d", len(res.Rows))
	}
	if s, _ := res.Rows[0].Values[0].AsString(); s != "t1" {
		t.Fatalf("row = %v", res.Rows[0].Values)
	}
	// Aggregates over a view.
	res, err = eng.Run(tx, `SELECT COUNT(*) FROM HeavyVehicles`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0].Values[0].AsInt(); n != 2 {
		t.Fatalf("COUNT over view = %v", res.Rows[0].Values[0])
	}
	// Ordering and limit over a view.
	res, err = eng.Run(tx, `SELECT id FROM HeavyVehicles ORDER BY weight DESC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := res.Rows[0].Values[0].AsString(); s != "t1" {
		t.Fatalf("ordered view row = %v", res.Rows[0].Values)
	}
}

func TestViewOverViewAndCycles(t *testing.T) {
	w := newWorld(t)
	w.vm.Define("Heavy", `SELECT * FROM Vehicle WHERE weight > 7500`)
	if err := w.vm.Define("VeryHeavy", `SELECT * FROM Heavy WHERE weight > 8500`); err != nil {
		t.Fatal(err)
	}
	tx := w.db.Begin()
	defer tx.Commit()
	res, err := w.vm.eng.Run(tx, `SELECT * FROM VeryHeavy`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("view-over-view rows = %d", len(res.Rows))
	}
	// A cyclic redefinition must error, not recurse forever.
	if err := w.vm.Redefine("Heavy", `SELECT * FROM Heavy`); err == nil {
		t.Fatal("cyclic view accepted")
	}
}

func TestViewWithLimitOnlyBareSelect(t *testing.T) {
	w := newWorld(t)
	w.vm.Define("TopOne", `SELECT * FROM Vehicle ORDER BY weight DESC LIMIT 1`)
	tx := w.db.Begin()
	defer tx.Commit()
	res, err := w.vm.eng.Run(tx, `SELECT * FROM TopOne`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].OID != w.heavy {
		t.Fatalf("rows = %+v", res.Rows)
	}
	// Restricting a LIMITed view would silently change semantics: reject.
	if _, err := w.vm.eng.Run(tx, `SELECT * FROM TopOne WHERE weight > 0`); err == nil {
		t.Fatal("restriction over LIMITed view accepted")
	}
}
