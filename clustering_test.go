package oodb_test

// Differential suite for the clustered compaction rewrite: a placement
// policy may only change WHERE records live, never WHAT any reader sees.
// For every policy (none, composite, hot) the test compares the full
// logical state — per-object bytes, graph fingerprint, closure traversal,
// index-backed query results — before and after the rewrite, and keeps a
// snapshot reader hammering closures concurrently with the compaction to
// pin snapshot isolation across the physical segment swap. The clustered
// policies must also actually move records; a policy that silently
// degrades to scan order would make the suite (and the benchmark) vacuous.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"oodb"
	"oodb/internal/bench"
	"oodb/internal/maint"
	"oodb/internal/model"
)

const (
	clParts    = 300
	clConn     = 3
	clNoisePer = 2
	clSeed     = 5
)

// clScanOrder returns Part's OIDs in physical scan order.
func clScanOrder(t *testing.T, db *oodb.DB, class model.ClassID) []model.OID {
	t.Helper()
	var order []model.OID
	if err := db.Engine().Store.ScanClass(class, func(oid model.OID, _ []byte) bool {
		order = append(order, oid)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return order
}

// clImages snapshots every part's encoded bytes via a snapshot scan.
func clImages(t *testing.T, db *oodb.DB, class model.ClassID) map[model.OID][]byte {
	t.Helper()
	images := make(map[model.OID][]byte)
	snap := db.BeginSnapshot()
	defer snap.Commit()
	if err := snap.Scan(class, func(obj *model.Object) bool {
		images[obj.OID] = model.EncodeObject(obj)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return images
}

func TestClusteredRewriteLogicallyInvisible(t *testing.T) {
	for _, tc := range []struct {
		policy     maint.ClusterPolicy
		wantMoved  bool
		makeHeat   bool
		wantReason string
	}{
		{maint.ClusterNone, false, false, "default rewrite must keep scan order byte for byte"},
		{maint.ClusterComposite, true, false, "composite placement on a decorrelated graph must move records"},
		{maint.ClusterHot, true, true, "heat placement with skewed fetches must move records"},
	} {
		t.Run(tc.policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			db, err := oodb.Open(dir, oodb.Options{NoSync: true})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			g, err := bench.BuildOO1(db, clParts, clConn, clNoisePer, clSeed)
			if err != nil {
				t.Fatal(err)
			}
			cls, err := db.ClassByName("Part")
			if err != nil {
				t.Fatal(err)
			}
			cm, err := db.Composites()
			if err != nil {
				t.Fatal(err)
			}
			if err := cm.DeclareComposite(cls.ID, "to", false); err != nil {
				t.Fatal(err)
			}
			if err := db.CreateIndex("part_pid", "Part", []string{"pid"}, false); err != nil {
				t.Fatal(err)
			}

			// Reference state before the rewrite.
			preOrder := clScanOrder(t, db, cls.ID)
			preImages := clImages(t, db, cls.ID)
			preHash, err := g.GraphHash(db)
			if err != nil {
				t.Fatal(err)
			}
			preVisits, preClosure, err := g.Closure(db, 0)
			if err != nil {
				t.Fatal(err)
			}
			probe := func() string {
				out := ""
				for _, pid := range []int{0, clParts / 2, clParts - 1} {
					res, err := db.Query(fmt.Sprintf(`SELECT pid, x, y FROM Part WHERE pid = %d`, pid))
					if err != nil {
						t.Fatal(err)
					}
					for _, row := range res.Rows {
						out += fmt.Sprintf("%s%v;", row.OID, row.Values)
					}
				}
				return out
			}
			preProbe := probe()

			if tc.makeHeat {
				db.Engine().Store.ResetAccessCounts()
				// Skewed heat: the last scan-order records get the fetches,
				// so heat order must differ from scan order.
				for i := 0; i < 5; i++ {
					for _, oid := range preOrder[len(preOrder)-20:] {
						if _, err := db.Fetch(oid); err != nil {
							t.Fatal(err)
						}
					}
				}
			}

			// Concurrent snapshot reader: closures must return the reference
			// fingerprint whether they observe the old layout, the new one,
			// or the swap in between.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			var readerErr error
			var readerMu sync.Mutex
			wg.Add(1)
			go func() {
				defer wg.Done()
				for n := 0; ; n++ {
					select {
					case <-stop:
						if n > 0 {
							return
						}
					default:
					}
					v, h, err := g.Closure(db, n%clParts)
					if err == nil && n%clParts == 0 && (v != preVisits || h != preClosure) {
						err = fmt.Errorf("concurrent closure from root 0 saw (%d visits, %x), want (%d, %x)",
							v, h, preVisits, preClosure)
					}
					if err != nil {
						readerMu.Lock()
						readerErr = err
						readerMu.Unlock()
						return
					}
				}
			}()

			res, err := db.Maintenance(maint.Options{Clustering: tc.policy}).CompactClass(cls.ID)
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}
			readerMu.Lock()
			if readerErr != nil {
				t.Fatal(readerErr)
			}
			readerMu.Unlock()

			// Physical contract.
			postOrder := clScanOrder(t, db, cls.ID)
			if len(postOrder) != len(preOrder) {
				t.Fatalf("rewrite changed live count: %d -> %d", len(preOrder), len(postOrder))
			}
			moved := 0
			for i := range preOrder {
				if postOrder[i] != preOrder[i] {
					moved++
				}
			}
			if tc.wantMoved && (moved == 0 || res.Reordered == 0) {
				t.Fatalf("%s (moved=%d, Reordered=%d)", tc.wantReason, moved, res.Reordered)
			}
			if !tc.wantMoved && (moved != 0 || res.Reordered != 0) {
				t.Fatalf("%s (moved=%d, Reordered=%d)", tc.wantReason, moved, res.Reordered)
			}

			// Logical contract: every reader path sees the identical state.
			postImages := clImages(t, db, cls.ID)
			if len(postImages) != len(preImages) {
				t.Fatalf("rewrite changed object count: %d -> %d", len(preImages), len(postImages))
			}
			for oid, want := range preImages {
				got, ok := postImages[oid]
				if !ok {
					t.Fatalf("object %s lost by %s rewrite", oid, tc.policy)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("object %s bytes changed by %s rewrite", oid, tc.policy)
				}
			}
			if h, err := g.GraphHash(db); err != nil || h != preHash {
				t.Fatalf("graph hash after %s rewrite: %x (err %v), want %x", tc.policy, h, err, preHash)
			}
			if v, h, err := g.Closure(db, 0); err != nil || v != preVisits || h != preClosure {
				t.Fatalf("closure after %s rewrite: (%d, %x, %v), want (%d, %x)", tc.policy, v, h, err, preVisits, preClosure)
			}
			if got := probe(); got != preProbe {
				t.Fatalf("index probe after %s rewrite:\n got %q\nwant %q", tc.policy, got, preProbe)
			}
		})
	}
}

// TestSnapshotPinnedAcrossClusteredRewrite pins the harder isolation
// property: a snapshot BEGUN BEFORE the rewrite, read only AFTER it, must
// still see the pre-rewrite images even though every record has moved.
func TestSnapshotPinnedAcrossClusteredRewrite(t *testing.T) {
	dir := t.TempDir()
	db, err := oodb.Open(dir, oodb.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	g, err := bench.BuildOO1(db, 100, 2, 2, clSeed)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := db.ClassByName("Part")
	if err != nil {
		t.Fatal(err)
	}
	cm, err := db.Composites()
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.DeclareComposite(cls.ID, "to", false); err != nil {
		t.Fatal(err)
	}
	preImages := clImages(t, db, cls.ID)

	snap := db.BeginSnapshot()
	defer snap.Commit()
	if res, err := db.Maintenance(maint.Options{Clustering: maint.ClusterComposite}).CompactClass(cls.ID); err != nil {
		t.Fatal(err)
	} else if res.Reordered == 0 {
		t.Fatal("rewrite moved nothing; snapshot pinning untested")
	}

	seen := 0
	for _, oid := range g.Parts {
		obj, err := snap.Fetch(oid)
		if err != nil {
			t.Fatalf("pre-rewrite snapshot lost %s after rewrite: %v", oid, err)
		}
		if !bytes.Equal(model.EncodeObject(obj), preImages[oid]) {
			t.Fatalf("pre-rewrite snapshot sees post-rewrite bytes for %s", oid)
		}
		seen++
	}
	if seen != len(preImages) {
		t.Fatalf("snapshot saw %d objects, want %d", seen, len(preImages))
	}
}
