package oodb

import (
	"errors"
	"fmt"

	"oodb/internal/authz"
)

// Session is a role-bound view of the database: every operation is checked
// against the authorization lattice before it runs, and query results are
// filtered to the instances the role may read. It turns the authorizer's
// *decisions* (internal/authz, the RBK model) into *enforcement* — the
// paper's requirement that authorization be a database facility, not an
// application convention (§3.1 requirement 2).
type Session struct {
	db   *DB
	az   *authz.Authorizer
	role string
}

// Session binds a role to this database under an authorizer.
func (db *DB) Session(az *authz.Authorizer, role string) *Session {
	return &Session{db: db, az: az, role: role}
}

// Role returns the session's role.
func (s *Session) Role() string { return s.role }

// Query runs a query and filters the result to instances the role may
// read. A role without read access to any instance in scope gets an empty
// result, not an error (content filtering, like a view).
func (s *Session) Query(src string) (*Result, error) {
	res, err := s.db.Query(src)
	if err != nil {
		return nil, err
	}
	kept := res.Rows[:0:0]
	for _, row := range res.Rows {
		if row.OID.IsNil() {
			// Aggregate rows carry no identity; aggregates over protected
			// data require class-level read access on the target class,
			// checked below via the plan scope — conservatively require
			// nothing here because the aggregate inputs were row-checked
			// only when rows exist. To stay safe, drop aggregate rows
			// unless the role can read the whole database.
			if s.az.Allowed(s.role, authz.Read, authz.Database()) {
				kept = append(kept, row)
			}
			continue
		}
		if s.az.Allowed(s.role, authz.Read, authz.Instance(row.OID)) {
			kept = append(kept, row)
		}
	}
	res.Rows = kept
	return res, nil
}

// Fetch reads one object if the role may read it.
func (s *Session) Fetch(oid OID) (*Object, error) {
	if err := s.az.Check(s.role, authz.Read, authz.Instance(oid)); err != nil {
		return nil, err
	}
	return s.db.Fetch(oid)
}

// Get reads one attribute, honoring attribute-level grants: the attribute
// must be readable AND the instance must be readable.
func (s *Session) Get(obj *Object, attr string) (Value, error) {
	if err := s.az.Check(s.role, authz.Read, authz.Instance(obj.OID)); err != nil {
		return Null, err
	}
	// The instance is readable; an attribute-level check can still deny
	// via an explicit negative. The closed-world "no applicable grant"
	// outcome falls back to the instance permission already established.
	if err := s.az.Check(s.role, authz.Read, authz.Attribute(obj.Class(), attr)); err != nil && !isNoGrant(err) {
		return Null, err
	}
	return s.db.Get(obj, attr)
}

func isNoGrant(err error) bool {
	return errors.Is(err, authz.ErrNoGrant)
}

// Update writes attributes if the role may write the instance (and no
// attribute-level write prohibition covers a written attribute).
func (s *Session) Update(oid OID, attrs Attrs) error {
	if err := s.az.Check(s.role, authz.Write, authz.Instance(oid)); err != nil {
		return err
	}
	obj, err := s.db.Fetch(oid)
	if err != nil {
		return err
	}
	for name := range attrs {
		if s.attributeWriteDenied(obj.Class(), name) {
			return fmt.Errorf("oodb: attribute %q: %w", name, authz.ErrDenied)
		}
	}
	return s.db.Do(func(tx *Tx) error { return tx.Update(oid, attrs) })
}

func (s *Session) attributeWriteDenied(class ClassID, attr string) bool {
	err := s.az.Check(s.role, authz.Write, authz.Attribute(class, attr))
	if err == nil {
		return false
	}
	return !isNoGrant(err)
}

// Insert creates an object if the role may write the class.
func (s *Session) Insert(className string, attrs Attrs) (OID, error) {
	cl, err := s.db.ClassByName(className)
	if err != nil {
		return 0, err
	}
	if err := s.az.Check(s.role, authz.Write, authz.Class(cl.ID)); err != nil {
		return 0, err
	}
	var oid OID
	err = s.db.Do(func(tx *Tx) error {
		var err error
		oid, err = tx.Insert(className, attrs)
		return err
	})
	return oid, err
}

// Delete removes an object if the role may write it.
func (s *Session) Delete(oid OID) error {
	if err := s.az.Check(s.role, authz.Write, authz.Instance(oid)); err != nil {
		return err
	}
	return s.db.Do(func(tx *Tx) error { return tx.Delete(oid) })
}
