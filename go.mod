module oodb

go 1.22
