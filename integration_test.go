package oodb_test

import (
	"fmt"
	"testing"

	"oodb"
	"oodb/internal/authz"
	"oodb/internal/rules"
)

// TestIntegrationCADLifecycle drives composites, versions, checkout,
// indexes and queries together through a restart — the cross-module path
// a CAx application would take.
func TestIntegrationCADLifecycle(t *testing.T) {
	dir := t.TempDir()
	db, err := oodb.Open(dir, oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Schema: Module composed of Cells; modules are versionable.
	if _, err := db.DefineClass("Cell", nil,
		oodb.Attr{Name: "name", Domain: "String"},
		oodb.Attr{Name: "area", Domain: "Integer"},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineClass("Module", nil,
		oodb.Attr{Name: "name", Domain: "String"},
		oodb.Attr{Name: "cells", Domain: "Cell", SetValued: true},
	); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("cell_area", "Cell", []string{"area"}, true); err != nil {
		t.Fatal(err)
	}
	mod, _ := db.ClassByName("Module")
	cm, err := db.Composites()
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.DeclareComposite(mod.ID, "cells", true); err != nil {
		t.Fatal(err)
	}
	vm, err := db.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.EnableVersioning(mod.ID); err != nil {
		t.Fatal(err)
	}

	// Build v1 with 10 cells.
	var generic, v1 oodb.OID
	err = db.Do(func(tx *oodb.Tx) error {
		var err error
		generic, v1, err = vm.CreateVersioned(tx, mod.ID, oodb.Attrs{"name": oodb.String("alu")})
		if err != nil {
			return err
		}
		for i := 0; i < 10; i++ {
			cell, err := tx.Insert("Cell", oodb.Attrs{
				"name": oodb.String(fmt.Sprintf("c%d", i)), "area": oodb.Int(int64(i * 10))})
			if err != nil {
				return err
			}
			if err := cm.Attach(tx, v1, "cells", cell); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Derive v2; checkout v2, edit, checkin.
	var v2 oodb.OID
	db.Do(func(tx *oodb.Tx) error {
		v2, err = vm.Derive(tx, v1)
		return err
	})
	co, err := db.Checkouts()
	if err != nil {
		t.Fatal(err)
	}
	d, err := co.Checkout("alice", v2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Set("name", oodb.String("alu-v2")); err != nil {
		t.Fatal(err)
	}
	if err := co.Checkin("alice", v2); err != nil {
		t.Fatal(err)
	}

	// Restart. Everything must come back: versions, composites, indexes.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = oodb.Open(dir, oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	vm, _ = db.Versions()
	cm, _ = db.Composites()

	// Dynamic binding resolves to v2, which carries alice's edit and the
	// copied cells.
	got, err := vm.Resolve(generic)
	if err != nil || got != v2 {
		t.Fatalf("Resolve = %v, %v (want %v)", got, err, v2)
	}
	obj, _ := db.Fetch(v2)
	nv, _ := db.Get(obj, "name")
	if s, _ := nv.AsString(); s != "alu-v2" {
		t.Fatalf("checked-in edit lost: %v", nv)
	}
	comps, err := cm.Components(v2)
	if err != nil || len(comps) != 10 {
		t.Fatalf("components after restart = %d, %v", len(comps), err)
	}
	// Index rebuilt and usable.
	res, err := db.Query(`SELECT name FROM Cell WHERE area >= 50 ORDER BY area`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("indexed query rows = %d", len(res.Rows))
	}
	plan, _ := db.Explain(`SELECT name FROM Cell WHERE area = 50`)
	if !contains(plan, "index-eq(cell_area)") {
		t.Fatalf("index not used after restart: %s", plan)
	}

	// Composite delete propagates; the version bookkeeping sheds v2.
	err = db.Do(func(tx *oodb.Tx) error {
		if err := vm.DeleteVersion(tx, v2); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := vm.Resolve(generic); got != v1 {
		t.Fatalf("after deleting v2, Resolve = %v (want %v)", got, v1)
	}
}

// TestIntegrationContentBasedAuthorization composes views and the
// authorization lattice: a role reads objects only through the views it
// is granted — the paper's §5.4 use of views for content-based
// authorization.
func TestIntegrationContentBasedAuthorization(t *testing.T) {
	db, err := oodb.Open(t.TempDir(), oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.DefineClass("Report", nil,
		oodb.Attr{Name: "title", Domain: "String"},
		oodb.Attr{Name: "classified", Domain: "Boolean"},
	); err != nil {
		t.Fatal(err)
	}
	var public, secret oodb.OID
	db.Do(func(tx *oodb.Tx) error {
		public, _ = tx.Insert("Report", oodb.Attrs{
			"title": oodb.String("roadmap"), "classified": oodb.Bool(false)})
		secret, _ = tx.Insert("Report", oodb.Attrs{
			"title": oodb.String("black-project"), "classified": oodb.Bool(true)})
		return nil
	})

	views, err := db.Views()
	if err != nil {
		t.Fatal(err)
	}
	if err := views.Define("PublicReports", `SELECT * FROM Report WHERE classified = false`); err != nil {
		t.Fatal(err)
	}

	az := db.Authorizer()
	az.AddRole("analyst")
	az.AddRole("director")
	az.AddRoleEdge("director", "analyst")
	cls, _ := db.ClassByName("Report")
	// Directors read the class outright; analysts get nothing directly
	// and see reports only through the public view.
	az.Grant(authz.Grant{Role: "director", Type: authz.Read, Object: authz.Class(cls.ID)})
	grantsViaView := map[string][]string{"analyst": {"PublicReports"}}

	// The composed check an application gate would use.
	canRead := func(role string, oid oodb.OID) bool {
		if az.Allowed(role, authz.Read, authz.Instance(oid)) {
			return true
		}
		for _, v := range grantsViaView[role] {
			tx := db.Begin()
			ok, err := views.Visible(tx, v, oid)
			tx.Commit()
			if err == nil && ok {
				return true
			}
		}
		return false
	}

	if !canRead("director", secret) {
		t.Error("director denied by class grant")
	}
	if !canRead("analyst", public) {
		t.Error("analyst denied the public report via the view")
	}
	if canRead("analyst", secret) {
		t.Error("analyst read a classified report")
	}
	// Content-based means content changes flip visibility: declassify.
	db.Do(func(tx *oodb.Tx) error {
		return tx.Update(secret, oodb.Attrs{"classified": oodb.Bool(false)})
	})
	if !canRead("analyst", secret) {
		t.Error("declassified report still hidden")
	}
}

// TestIntegrationEvolutionUnderLoad evolves the schema while data and
// indexes exist, checking queries at each step.
func TestIntegrationEvolutionUnderLoad(t *testing.T) {
	db, err := oodb.Open(t.TempDir(), oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.DefineClass("Base", nil,
		oodb.Attr{Name: "x", Domain: "Integer"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineClass("Leaf", []string{"Base"}); err != nil {
		t.Fatal(err)
	}
	db.CreateIndex("bx", "Base", []string{"x"}, true)
	db.Do(func(tx *oodb.Tx) error {
		for i := 0; i < 30; i++ {
			cls := "Base"
			if i%2 == 0 {
				cls = "Leaf"
			}
			if _, err := tx.Insert(cls, oodb.Attrs{"x": oodb.Int(int64(i % 5))}); err != nil {
				return err
			}
		}
		return nil
	})

	// Add an attribute with a default; old instances answer queries on it.
	if err := db.AddAttribute("Base", oodb.Attr{
		Name: "status", Domain: "String", Default: oodb.String("active")}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT * FROM Base WHERE status = 'active'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 30 {
		t.Fatalf("lazy default query rows = %d, want 30", len(res.Rows))
	}

	// Index an attribute added after the data existed: population scans.
	if err := db.CreateIndex("bstatus", "Base", []string{"status"}, true); err != nil {
		t.Fatal(err)
	}
	plan, _ := db.Explain(`SELECT * FROM Base WHERE status = 'retired'`)
	if !contains(plan, "index-eq(bstatus)") {
		t.Fatalf("plan = %s", plan)
	}
	// Note: instances storing no value are indexed under nothing, so the
	// index answers written values; the residual predicate keeps results
	// correct either way.
	db.Do(func(tx *oodb.Tx) error {
		res, err := db.QueryTx(tx, `SELECT * FROM Base LIMIT 3`)
		if err != nil {
			return err
		}
		for _, r := range res.Rows {
			if err := tx.Update(r.OID, oodb.Attrs{"status": oodb.String("retired")}); err != nil {
				return err
			}
		}
		return nil
	})
	res, err = db.Query(`SELECT * FROM Base WHERE status = 'retired'`)
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("retired rows = %d, %v", len(res.Rows), err)
	}

	// Drop the attribute: the index on it goes away, queries on it fail
	// cleanly, everything else still works.
	if err := db.DropAttribute("Base", "status"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT * FROM Base WHERE status = 'retired'`); err == nil {
		t.Fatal("query on dropped attribute succeeded")
	}
	res, err = db.Query(`SELECT * FROM Base WHERE x = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("x=2 rows = %d", len(res.Rows))
	}
}

// TestIntegrationDeductiveOverVersions runs rules over version bookkeeping
// state: derived predicates see the same objects the version layer
// maintains.
func TestIntegrationDeductiveOverVersions(t *testing.T) {
	db, err := oodb.Open(t.TempDir(), oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cl, _ := db.DefineClass("Design", nil, oodb.Attr{Name: "name", Domain: "String"})
	vm, _ := db.Versions()
	vm.EnableVersioning(cl.ID)
	var v1, v2, v3 oodb.OID
	db.Do(func(tx *oodb.Tx) error {
		_, v1, _ = vm.CreateVersioned(tx, cl.ID, oodb.Attrs{"name": oodb.String("x")})
		v2, _ = vm.Derive(tx, v1)
		v3, _ = vm.Derive(tx, v2)
		return nil
	})

	eng, edb := db.RuleEngine()
	if err := edb.MapAttr("parent", "Design", "_vParent"); err != nil {
		t.Fatal(err)
	}
	eng.AddRule(rules.Rule{
		Head: rules.A("derivedFrom", rules.V("X"), rules.V("Y")),
		Body: []rules.Atom{rules.A("parent", rules.V("X"), rules.V("Y"))},
	})
	eng.AddRule(rules.Rule{
		Head: rules.A("derivedFrom", rules.V("X"), rules.V("Z")),
		Body: []rules.Atom{
			rules.A("derivedFrom", rules.V("X"), rules.V("Y")),
			rules.A("parent", rules.V("Y"), rules.V("Z")),
		},
	})
	sols, err := eng.Query(rules.A("derivedFrom", rules.C(oodb.Ref(v3)), rules.V("A")))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 { // v2 and v1
		t.Fatalf("v3 derivation ancestry = %v", sols)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
