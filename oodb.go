// Package oodb is kimdb: an object-oriented database system in Go,
// reproducing the architecture of Won Kim, "Research Directions in
// Object-Oriented Database Systems" (PODS 1990).
//
// The package is the public facade over the engine: it provides the core
// object-oriented data model (classes, a dynamically extensible class
// hierarchy with multiple inheritance, object identity, encapsulated
// behavior with late-bound message passing), conventional database
// facilities re-architected for that model (ACID transactions with
// hierarchical locking, write-ahead logging and crash recovery,
// class-hierarchy and nested-attribute indexes, a declarative query
// language with automatic access-path selection), and the paper's extended
// feature set (memory-resident workspaces with pointer swizzling, versions,
// composite objects, checkout/checkin long transactions, role-based
// implicit authorization, views, deductive rules, and federation of
// heterogeneous databases under the OO common model).
//
// Quick start:
//
//	db, err := oodb.Open(dir, oodb.Options{})
//	cls, err := db.DefineClass("Vehicle", nil,
//	    oodb.Attr{Name: "weight", Domain: "Integer"},
//	)
//	err = db.Do(func(tx *oodb.Tx) error {
//	    _, err := tx.Insert("Vehicle", oodb.Attrs{"weight": oodb.Int(7600)})
//	    return err
//	})
//	res, err := db.Query(`SELECT * FROM Vehicle WHERE weight > 7500`)
package oodb

import (
	"fmt"

	"oodb/internal/authz"
	"oodb/internal/checkout"
	"oodb/internal/composite"
	"oodb/internal/core"
	"oodb/internal/federation"
	"oodb/internal/maint"
	"oodb/internal/model"
	"oodb/internal/obs"
	"oodb/internal/query"
	"oodb/internal/rules"
	"oodb/internal/schema"
	"oodb/internal/version"
	"oodb/internal/views"
	"oodb/internal/workspace"
)

// Re-exported value-model types and constructors. Values are immutable
// tagged unions; see the methods on Value for accessors.
type (
	// Value is one attribute value: a primitive object, a reference, or a
	// set of values.
	Value = model.Value
	// OID is a unique object identifier (24-bit class, 40-bit sequence).
	OID = model.OID
	// ClassID identifies a class in the catalog.
	ClassID = model.ClassID
	// Tx is an ACID transaction (strict two-phase locked, WAL-logged).
	Tx = core.Tx
	// Object is the raw stored state of an instance.
	Object = model.Object
	// Result is a query result set.
	Result = query.Result
	// Row is one query result row.
	Row = query.Row
	// Class is a catalog entry.
	Class = schema.Class
	// MethodImpl is the executable body of a method; method bodies are
	// process-local and re-registered after Open (signatures persist).
	MethodImpl = schema.MethodImpl
	// MethodEngine is the engine surface a method body may use.
	MethodEngine = schema.MethodEngine
	// Workspace is a memory-resident object cache with pointer swizzling.
	Workspace = workspace.Workspace
	// Descriptor is a workspace-resident object.
	Descriptor = workspace.Descriptor
)

// Value constructors.
var (
	// Int returns an integer value.
	Int = model.Int
	// Float returns a floating-point value.
	Float = model.Float
	// Bool returns a boolean value.
	Bool = model.Bool
	// String returns a string value.
	String = model.String
	// BytesValue returns a long-unstructured-data value.
	BytesValue = model.Bytes
	// Ref returns an object-reference value.
	Ref = model.Ref
	// SetOf returns a set value (normalized, deduplicated).
	SetOf = model.Set
	// Null is the null value.
	Null = model.Null
)

// Compare defines the total order over values (also the index key order).
var Compare = model.Compare

// Attrs is the attribute map passed to Insert and Update.
type Attrs = map[string]Value

// Attr declares one attribute at class-definition time. Domain names a
// class: a primitive ("Integer", "Float", "Boolean", "String", "Bytes"),
// any defined class, or the class being defined (self-reference).
type Attr struct {
	Name      string
	Domain    string
	SetValued bool
	Default   Value
}

// Options configures Open.
type Options struct {
	// PoolPages is the buffer pool capacity in 4 KiB pages (0 = 1024).
	PoolPages int
	// PoolShards is the number of lock stripes in the buffer pool
	// (0 = 16). More shards let more concurrent readers fetch unrelated
	// pages without contending.
	PoolShards int
	// CheckpointBytes triggers an automatic checkpoint when the WAL grows
	// past this size (0 = 8 MiB).
	CheckpointBytes int64
	// NoSync skips the fsync at commit. Unsafe; benchmarking only.
	NoSync bool
	// RelaxedDurability makes every Commit behave like CommitAsync: the
	// commit record is queued for the WAL writer's next batch and the call
	// returns without waiting for the fsync. A crash loses at most a suffix
	// of acknowledged commits, never an intermediate one, and the store is
	// never corrupted. Per-transaction control is available via
	// Tx.CommitAsync under the default full durability.
	RelaxedDurability bool
	// ReplayWorkers bounds the parallelism of crash-recovery redo
	// (0 = GOMAXPROCS, 1 = serial). Recovery output is identical at any
	// setting; only the replay wall-clock changes.
	ReplayWorkers int
}

// DB is an open database.
type DB struct {
	eng *core.DB
	q   *query.Engine
}

// Open opens (or creates) a database in dir, running crash recovery if
// needed.
func Open(dir string, opts Options) (*DB, error) {
	durability := core.DurabilityFull
	if opts.RelaxedDurability {
		durability = core.DurabilityRelaxed
	}
	eng, err := core.Open(dir, core.Options{
		PoolPages:       opts.PoolPages,
		PoolShards:      opts.PoolShards,
		CheckpointBytes: opts.CheckpointBytes,
		NoSync:          opts.NoSync,
		Durability:      durability,
		ReplayWorkers:   opts.ReplayWorkers,
	})
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng, q: query.NewEngine(eng)}, nil
}

// Close checkpoints and closes the database.
func (db *DB) Close() error { return db.eng.Close() }

// Checkpoint forces a checkpoint (flush + WAL truncation).
func (db *DB) Checkpoint() error { return db.eng.Checkpoint() }

// Engine exposes the underlying engine for advanced integrations (the
// feature managers below use it internally).
func (db *DB) Engine() *core.DB { return db.eng }

// --- Schema -----------------------------------------------------------

// resolveClassNames maps class names to ids.
func (db *DB) resolveClassNames(names []string) ([]model.ClassID, error) {
	out := make([]model.ClassID, 0, len(names))
	for _, n := range names {
		cl, err := db.eng.Catalog.ClassByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, cl.ID)
	}
	return out, nil
}

// resolveAttrSpecs converts public Attr declarations, allowing the new
// class's own name as a self-referential domain.
func (db *DB) resolveAttrSpecs(selfName string, attrs []Attr) ([]schema.AttrSpec, []string, error) {
	specs := make([]schema.AttrSpec, 0, len(attrs))
	var selfAttrs []string
	for _, a := range attrs {
		if a.Domain == selfName {
			// Deferred: the class id does not exist yet.
			selfAttrs = append(selfAttrs, a.Name)
			continue
		}
		cl, err := db.eng.Catalog.ClassByName(a.Domain)
		if err != nil {
			return nil, nil, fmt.Errorf("oodb: attribute %q: %w", a.Name, err)
		}
		specs = append(specs, schema.AttrSpec{
			Name: a.Name, Domain: cl.ID, SetValued: a.SetValued, Default: a.Default,
		})
	}
	return specs, selfAttrs, nil
}

// DefineClass creates a class with the given direct superclasses (by
// name, in precedence order; empty means the root class Object) and
// attributes.
func (db *DB) DefineClass(name string, supers []string, attrs ...Attr) (*Class, error) {
	superIDs, err := db.resolveClassNames(supers)
	if err != nil {
		return nil, err
	}
	specs, selfAttrs, err := db.resolveAttrSpecs(name, attrs)
	if err != nil {
		return nil, err
	}
	cl, err := db.eng.DefineClass(name, superIDs, specs...)
	if err != nil {
		return nil, err
	}
	// Self-referential attributes are added once the class id exists.
	for _, a := range attrs {
		for _, sa := range selfAttrs {
			if a.Name != sa {
				continue
			}
			if _, err := db.eng.AddAttribute(cl.ID, schema.AttrSpec{
				Name: a.Name, Domain: cl.ID, SetValued: a.SetValued, Default: a.Default,
			}); err != nil {
				return nil, err
			}
		}
	}
	return cl, nil
}

// ClassByName returns a catalog entry.
func (db *DB) ClassByName(name string) (*Class, error) {
	return db.eng.Catalog.ClassByName(name)
}

// AddAttribute adds an attribute to an existing class (lazy evolution:
// existing instances read the default).
func (db *DB) AddAttribute(class string, a Attr) error {
	cl, err := db.eng.Catalog.ClassByName(class)
	if err != nil {
		return err
	}
	domain, err := db.eng.Catalog.ClassByName(a.Domain)
	if err != nil {
		return fmt.Errorf("oodb: attribute %q: %w", a.Name, err)
	}
	_, err = db.eng.AddAttribute(cl.ID, schema.AttrSpec{
		Name: a.Name, Domain: domain.ID, SetValued: a.SetValued, Default: a.Default,
	})
	return err
}

// DropAttribute removes a locally defined attribute (indexes using it are
// dropped).
func (db *DB) DropAttribute(class, attr string) error {
	cl, err := db.eng.Catalog.ClassByName(class)
	if err != nil {
		return err
	}
	return db.eng.DropAttribute(cl.ID, attr)
}

// AddSuperclass links class beneath super (dynamic hierarchy extension).
func (db *DB) AddSuperclass(class, super string) error {
	ids, err := db.resolveClassNames([]string{class, super})
	if err != nil {
		return err
	}
	return db.eng.AddSuperclass(ids[0], ids[1])
}

// DropClass removes a class, its instances and its indexes; subclasses
// re-link to its superclasses.
func (db *DB) DropClass(class string) error {
	cl, err := db.eng.Catalog.ClassByName(class)
	if err != nil {
		return err
	}
	return db.eng.DropClass(cl.ID)
}

// AddMethod defines a method on a class with its implementation.
func (db *DB) AddMethod(class, name string, impl MethodImpl) error {
	cl, err := db.eng.Catalog.ClassByName(class)
	if err != nil {
		return err
	}
	return db.eng.AddMethod(cl.ID, name, impl)
}

// RegisterMethod re-attaches an implementation to a persisted method
// signature after Open.
func (db *DB) RegisterMethod(class, name string, impl MethodImpl) error {
	cl, err := db.eng.Catalog.ClassByName(class)
	if err != nil {
		return err
	}
	return db.eng.RegisterMethod(cl.ID, name, impl)
}

// CreateIndex builds an index named name on the attribute path of class.
// With hierarchy true it is a class-hierarchy index covering the class
// and all its subclasses; a path longer than one attribute builds a
// nested-attribute index.
func (db *DB) CreateIndex(name, class string, path []string, hierarchy bool) error {
	cl, err := db.eng.Catalog.ClassByName(class)
	if err != nil {
		return err
	}
	return db.eng.CreateIndex(name, cl.ID, path, hierarchy)
}

// DropIndex removes an index.
func (db *DB) DropIndex(name string) error { return db.eng.DropIndex(name) }

// SnapshotSchema stores a durable, labeled snapshot of the current
// catalog ([KIM88a]-style schema versioning). Returns the catalog version
// captured.
func (db *DB) SnapshotSchema(label string) (uint64, error) {
	return db.eng.SnapshotSchema(label)
}

// SchemaVersions lists stored schema snapshots.
func (db *DB) SchemaVersions() ([]core.SchemaVersion, error) {
	return db.eng.SchemaVersions()
}

// DiffSchema compares a snapshot against the live schema, returning
// human-readable change lines (+/- class, +/- attr).
func (db *DB) DiffSchema(label string) ([]string, error) {
	return db.eng.DiffSchema(label)
}

// --- Data -------------------------------------------------------------

// Begin starts a transaction. Finish it with Commit or Abort.
func (db *DB) Begin() *Tx { return db.eng.Begin() }

// BeginSnapshot starts a read-only snapshot transaction pinned to the
// current commit epoch. Its reads never touch the lock manager — a bulk
// writer holding exclusive locks does not stall it — and writes through
// it fail with core.ErrReadOnlyTxn. Finish it with Commit or Abort
// (equivalent for a snapshot: both just release the epoch pin).
func (db *DB) BeginSnapshot() *Tx { return db.eng.BeginSnapshot() }

// QuerySnapshot parses, plans and runs a query in its own snapshot
// transaction: lock-free, reading the last commit epoch.
func (db *DB) QuerySnapshot(src string) (*Result, error) {
	tx := db.BeginSnapshot()
	defer tx.Commit()
	return db.q.Run(tx, src)
}

// Do runs fn in a transaction, committing on nil and aborting on error,
// with one automatic retry after a deadlock.
func (db *DB) Do(fn func(tx *Tx) error) error { return db.eng.Do(fn) }

// Fetch returns the last committed state of an object (no locks; for
// transactional reads use Tx.Fetch).
func (db *DB) Fetch(oid OID) (*Object, error) { return db.eng.FetchObject(oid) }

// Get reads an attribute of an object by name, applying inheritance and
// class defaults.
func (db *DB) Get(obj *Object, attr string) (Value, error) {
	return db.eng.AttrValue(obj, attr)
}

// Send dispatches a message to an object with late binding.
func (db *DB) Send(oid OID, message string, args ...Value) (Value, error) {
	return db.eng.Send(oid, message, args...)
}

// Query parses, plans and runs a query in its own read-only transaction.
func (db *DB) Query(src string) (*Result, error) {
	tx := db.Begin()
	defer tx.Commit()
	return db.q.Run(tx, src)
}

// QueryTx runs a query inside an existing transaction.
func (db *DB) QueryTx(tx *Tx, src string) (*Result, error) {
	return db.q.Run(tx, src)
}

// Explain returns the access plan chosen for a query.
func (db *DB) Explain(src string) (string, error) { return db.q.Explain(src) }

// ExplainAnalyze runs the query in its own read-only transaction and
// returns the plan annotated with execution statistics: per-class rows
// scanned, index probes, buffer pool hits/misses, parallel fan-out, and
// per-stage timings (see internal/obs spans and DESIGN.md §Observability).
func (db *DB) ExplainAnalyze(src string) (string, error) {
	tx := db.Begin()
	defer tx.Commit()
	return db.q.ExplainAnalyze(tx, src)
}

// Metrics returns a point-in-time snapshot of every process-wide metric
// registered with the observability registry (counters, gauges and latency
// histograms across the storage, WAL, query, index and workspace layers).
// The snapshot marshals to JSON; it is what the -http metrics endpoint
// serves.
func (db *DB) Metrics() obs.Snapshot { return obs.TakeSnapshot() }

// SetMetricsEnabled toggles metric collection process-wide (default on).
// Disabled metrics cost one atomic load per update site.
func SetMetricsEnabled(on bool) { obs.SetEnabled(on) }

// QueryEngine exposes the query engine for tuning knobs (e.g. SerialScan,
// the concurrency-ablation switch) and plan-level integration.
func (db *DB) QueryEngine() *query.Engine { return db.q }

// NewWorkspace returns a memory-resident object workspace (OID→pointer
// swizzling; see Workspace).
func (db *DB) NewWorkspace() *Workspace { return workspace.New(db.eng) }

// Maintenance returns the online maintenance manager: segment compaction,
// leaked-page reclamation and planner-statistics collection (DESIGN §11).
// Call Start for the background sweep loop, or drive it on demand.
func (db *DB) Maintenance(opts maint.Options) *maint.Manager {
	return maint.New(db.eng, opts)
}

// --- Feature layers ----------------------------------------------------

// Versions returns the version-management layer (Chou-Kim model).
func (db *DB) Versions() (*version.Manager, error) { return version.New(db.eng) }

// Composites returns the composite-object layer (part-of semantics).
func (db *DB) Composites() (*composite.Manager, error) { return composite.New(db.eng) }

// Checkouts returns the long-transaction (checkout/checkin) layer.
func (db *DB) Checkouts() (*checkout.Manager, error) { return checkout.New(db.eng) }

// Views returns the view layer and wires its names into this database's
// query engine, so db.Query can use FROM <ViewName>.
func (db *DB) Views() (*views.Manager, error) {
	vm, err := views.New(db.eng)
	if err != nil {
		return nil, err
	}
	vm.AttachTo(db.q)
	return vm, nil
}

// Authorizer returns a fresh authorization lattice bound to this
// database's class hierarchy.
func (db *DB) Authorizer() *authz.Authorizer { return authz.New(db.eng.Catalog) }

// RuleEngine returns a deductive rule engine over this database; map
// classes and attributes to predicates via the returned EDB adapter.
func (db *DB) RuleEngine() (*rules.Engine, *rules.ObjectEDB) {
	edb := rules.NewObjectEDB(db.eng)
	return rules.NewEngine(edb), edb
}

// FederationSource exports this database as a member of a federation.
func (db *DB) FederationSource() federation.Source {
	return federation.NewOOSource(db.eng)
}
